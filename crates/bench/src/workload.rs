//! The machine-readable workload harness behind `geodabs bench`.
//!
//! Named scenarios combine a dataset *preset* (built from the
//! [`geodabs_gen`] generators) with a corpus size; running one measures
//! the throughput layer end to end — parallel batch ingest at several
//! thread counts, per-query latency percentiles and batch-query
//! throughput — and emits a versioned `BENCH_<scenario>.json` report.
//! Those reports are the repo's perf trajectory: every scaling PR is
//! judged against them, and CI's `perf-smoke` job gates merges on the
//! `smoke` scenario against a checked-in baseline
//! (`bench/baselines/smoke.json`).
//!
//! # Report schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "scenario": "smoke",
//!   "preset": "dense-urban",
//!   "seed": 42,
//!   "geodab_config": { "depth": 36, "k": 6, "t": 12, "prefix_bits": 16 },
//!   "corpus": { "trajectories": 240, "points": 68712, "routes": 12,
//!               "distinct_terms": 1204, "generation_seconds": 0.11 },
//!   "ingest": { "consistent": true,
//!               "runs": [ { "threads": 1, "seconds": 0.5, "traj_per_sec": 480.0 } ] },
//!   "query": { "count": 24, "limit": 10,
//!              "latency_ms": { "p50": 0.2, "p95": 0.4, "p99": 0.5,
//!                              "mean": 0.22, "max": 0.6 },
//!              "batch_runs": [ { "threads": 1, "seconds": 0.01,
//!                                "queries_per_sec": 2400.0 } ] }
//! }
//! ```
//!
//! `schema_version` is bumped whenever a field changes meaning; consumers
//! (the CI gate, plotting scripts) must check it before reading further.

use geodabs_cluster::{ClusterIndex, ShardNode, ShardRouter};
use geodabs_core::{Fingerprinter, Fingerprints, GeodabConfig};
use geodabs_gen::dataset::{Dataset, DatasetConfig};
use geodabs_gen::sampler::SamplerConfig;
use geodabs_index::store::{self, Persist, SnapshotError};
use geodabs_index::{
    codec, GeodabIndex, GeohashIndex, SearchOptions, SearchResult, TrajectoryIndex,
};
use geodabs_roadnet::generators::{grid_network, GridConfig};
use geodabs_serve::{Client, Frontend, FrontendConfig, LoadClient, LoadRun, Server, ServerConfig};
use geodabs_traj::{TrajId, Trajectory};
use geodabs_wal::{SyncPolicy, Wal, WalOp};
use std::time::{Duration, Instant};

use crate::json::Json;

/// The current `BENCH_*.json` schema version.
pub const SCHEMA_VERSION: u64 = 1;

/// A dataset family: how the synthetic world and its trajectories look.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Short overlapping urban routes at 1 Hz with 20 m GPS noise — the
    /// paper's dense-London workload.
    DenseUrban,
    /// A wide-spacing network with long, mostly disjoint routes, noisier
    /// fixes and faster travel — sparse rural traffic.
    SparseRural,
    /// Dense-urban routes with zero positional noise, as if every fix had
    /// been map-matched onto the network (the Section V-B pipeline).
    RoadMatched,
    /// Route lengths spread from a few hundred meters to network-scale,
    /// stressing fingerprint-count variance within one corpus.
    MixedLength,
}

impl Preset {
    /// The preset's stable name (used in scenario names and reports).
    pub fn name(&self) -> &'static str {
        match self {
            Preset::DenseUrban => "dense-urban",
            Preset::SparseRural => "sparse-rural",
            Preset::RoadMatched => "road-matched",
            Preset::MixedLength => "mixed-length",
        }
    }

    /// The road network the preset generates trajectories on.
    pub fn grid(&self) -> GridConfig {
        match self {
            Preset::DenseUrban | Preset::RoadMatched | Preset::MixedLength => GridConfig::default(),
            Preset::SparseRural => GridConfig {
                rows: 24,
                cols: 24,
                spacing_m: 1_500.0,
                jitter_m: 200.0,
                speed_range_mps: (15.0, 30.0),
                ..GridConfig::default()
            },
        }
    }

    /// The dataset configuration producing roughly `corpus` trajectories
    /// (routes × per-direction × 2, reverse paths included) and `queries`
    /// query trajectories.
    pub fn dataset(&self, corpus: usize, queries: usize) -> DatasetConfig {
        let (per_direction, min_route_m, noise_sigma_m) = match self {
            Preset::DenseUrban => (10, 2_000.0, 20.0),
            Preset::SparseRural => (5, 6_000.0, 30.0),
            Preset::RoadMatched => (10, 2_000.0, 0.0),
            Preset::MixedLength => (10, 400.0, 20.0),
        };
        let routes = (corpus / (per_direction * 2)).max(1);
        DatasetConfig {
            routes,
            per_direction,
            include_reverse: true,
            sampler: SamplerConfig {
                period_s: 1.0,
                noise_sigma_m,
            },
            min_route_m,
            queries,
            max_attempts_per_route: 400,
        }
    }
}

/// A named, reproducible workload: preset + corpus size + query count +
/// seed. The same scenario always generates the same trajectories, so two
/// `BENCH_<scenario>.json` files are comparable measurement to
/// measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// The scenario's stable name; the report lands in
    /// `BENCH_<name>.json`.
    pub name: String,
    /// Dataset family.
    pub preset: Preset,
    /// Target corpus size in trajectories.
    pub corpus: usize,
    /// Number of query trajectories.
    pub queries: usize,
    /// Generation seed.
    pub seed: u64,
}

impl Scenario {
    fn new(name: &str, preset: Preset, corpus: usize, queries: usize, seed: u64) -> Scenario {
        Scenario {
            name: name.to_string(),
            preset,
            corpus,
            queries,
            seed,
        }
    }
}

/// The scenario catalog. `smoke` is the seconds-scale config CI's
/// `perf-smoke` job runs on every push; `micro` exists for the test
/// suite; the `-1k/-10k/-100k` families are the sizes scaling PRs report
/// against.
pub fn catalog() -> Vec<Scenario> {
    let mut scenarios = vec![
        Scenario::new("micro", Preset::DenseUrban, 40, 4, 7),
        Scenario::new("smoke", Preset::DenseUrban, 2_000, 40, 42),
        // Snapshot restore vs re-ingest on the 10k preset; runs through
        // `run_cold_start` instead of `run_scenario`.
        Scenario::new(COLD_START, Preset::DenseUrban, 10_000, 50, 42),
        // Network serving over loopback; runs through `run_serve`
        // instead of `run_scenario`.
        Scenario::new(SERVE, Preset::DenseUrban, 2_000, 40, 42),
        // Write-ahead-log durability; runs through `run_durability`
        // instead of `run_scenario`.
        Scenario::new(DURABILITY, Preset::DenseUrban, 500, 40, 42),
        // Scatter/gather serving over remote shard servers; runs
        // through `run_distributed` instead of `run_scenario`.
        Scenario::new(DISTRIBUTED, Preset::DenseUrban, 2_000, 40, 42),
        // In-process shard-per-core serving with the lock-free read
        // path; runs through `run_multicore` instead of `run_scenario`.
        Scenario::new(MULTICORE, Preset::DenseUrban, 2_000, 40, 42),
        // Zipf hot-key query distribution over the serve layer; runs
        // through `run_skewed` instead of `run_scenario`.
        Scenario::new(SKEWED, Preset::DenseUrban, 2_000, 40, 42),
    ];
    for (suffix, corpus, queries) in [
        ("1k", 1_000, 50),
        ("10k", 10_000, 100),
        ("100k", 100_000, 100),
    ] {
        scenarios.push(Scenario::new(
            &format!("dense-urban-{suffix}"),
            Preset::DenseUrban,
            corpus,
            queries,
            42,
        ));
    }
    for preset in [
        Preset::SparseRural,
        Preset::RoadMatched,
        Preset::MixedLength,
    ] {
        for (suffix, corpus, queries) in [("1k", 1_000, 50), ("10k", 10_000, 100)] {
            scenarios.push(Scenario::new(
                &format!("{}-{suffix}", preset.name()),
                preset,
                corpus,
                queries,
                42,
            ));
        }
    }
    scenarios
}

/// The snapshot cold-start scenario's name; it measures save/load
/// bandwidth and restore-vs-reingest speedup via [`run_cold_start`]
/// rather than the throughput ladder of [`run_scenario`].
pub const COLD_START: &str = "cold-start";

/// The network-serving scenario's name; it measures client-observed QPS
/// and latency percentiles over loopback per connection count via
/// [`run_serve`] rather than the in-process ladder of [`run_scenario`].
pub const SERVE: &str = "serve";

/// The distributed-serving scenario's name; it measures
/// client-observed QPS and latency against a scatter/gather frontend
/// over in-process shard servers at several shard-server counts, every
/// response verified bit-identical against the monolithic index, via
/// [`run_distributed`] rather than the in-process ladder of
/// [`run_scenario`].
pub const DISTRIBUTED: &str = "distributed";

/// The multicore-serving scenario's name; it measures client-observed
/// QPS and latency against one server at several in-process shard
/// counts — quiet, and with a concurrent bulk ingest in flight to
/// exercise the lock-free read path — via [`run_multicore`] rather than
/// the in-process ladder of [`run_scenario`].
pub const MULTICORE: &str = "multicore";

/// The skewed-workload scenario's name; it measures client-observed QPS
/// and latency over loopback when the request stream follows a Zipf
/// hot-key distribution over the scenario's queries — the real-shaped
/// counterpart of the uniform round-robin of [`run_serve`] — via
/// [`run_skewed`] rather than the in-process ladder of [`run_scenario`].
pub const SKEWED: &str = "skewed";

/// The durability scenario's name; it measures acknowledged-write
/// latency per WAL sync policy, replay-on-boot recovery speed, and the
/// query-latency cost of concurrent background compaction via
/// [`run_durability`] rather than the in-process ladder of
/// [`run_scenario`].
pub const DURABILITY: &str = "durability";

/// Generates a scenario's reproducible dataset (network + corpus +
/// queries) — the one corpus-construction path shared by the scenario
/// runners, `snapshot save/load --verify`, and the serving layer.
pub fn generate(scenario: &Scenario) -> Dataset {
    let network = grid_network(&scenario.preset.grid(), scenario.seed);
    let config = scenario.preset.dataset(scenario.corpus, scenario.queries);
    Dataset::generate(&network, &config, scenario.seed).expect("grid networks are always routable")
}

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<Scenario> {
    catalog().into_iter().find(|s| s.name == name)
}

/// The thread counts a run measures: the powers of two `1, 2, 4, 8, …`
/// up to `max_threads`, plus `max_threads` itself.
pub fn thread_ladder(max_threads: usize) -> Vec<usize> {
    let max_threads = max_threads.max(1);
    let mut ladder: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t <= max_threads)
        .collect();
    if ladder.last() != Some(&max_threads) {
        ladder.push(max_threads);
    }
    ladder
}

/// One timed batch-ingest build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestRun {
    /// Worker threads used for fingerprinting.
    pub threads: usize,
    /// Wall-clock build time in seconds.
    pub seconds: f64,
    /// Trajectories indexed per second.
    pub traj_per_sec: f64,
}

/// One timed batch-query run over the full query set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryBatchRun {
    /// Worker threads used for query fan-out.
    pub threads: usize,
    /// Wall-clock time for the whole batch in seconds.
    pub seconds: f64,
    /// Queries answered per second.
    pub queries_per_sec: f64,
}

/// Per-query latency percentiles, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyMs {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Slowest query.
    pub max: f64,
}

/// Everything one scenario run measured; serialize with
/// [`WorkloadReport::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadReport {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// The fingerprinting configuration used.
    pub config: GeodabConfig,
    /// Trajectories in the corpus.
    pub trajectories: usize,
    /// Total points across the corpus.
    pub points: usize,
    /// Distinct routes behind the corpus.
    pub routes: usize,
    /// Distinct geodab terms after ingest.
    pub distinct_terms: usize,
    /// Seconds spent generating the dataset (not part of any throughput).
    pub generation_seconds: f64,
    /// Whether every build produced identical `(len, term_count)` — the
    /// cheap online check that parallel ingest matched serial ingest (the
    /// test suite pins full bit-identity).
    pub ingest_consistent: bool,
    /// One build per measured thread count.
    pub ingest: Vec<IngestRun>,
    /// Result cap used for all queries.
    pub query_limit: usize,
    /// Per-query latencies (sequential pass).
    pub latency: LatencyMs,
    /// One batch-query run per measured thread count.
    pub query_batches: Vec<QueryBatchRun>,
}

impl WorkloadReport {
    /// The canonical report file name: `BENCH_<scenario>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.scenario.name)
    }

    /// The best (highest) measured ingest throughput, in trajectories per
    /// second — the single number the CI perf gate compares.
    pub fn best_ingest_throughput(&self) -> f64 {
        self.ingest
            .iter()
            .map(|r| r.traj_per_sec)
            .fold(0.0, f64::max)
    }

    /// Serializes the report (schema version [`SCHEMA_VERSION`]).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Num(SCHEMA_VERSION as f64)),
            ("scenario", Json::Str(self.scenario.name.clone())),
            ("preset", Json::Str(self.scenario.preset.name().into())),
            ("seed", Json::Num(self.scenario.seed as f64)),
            (
                "geodab_config",
                Json::obj(vec![
                    ("depth", Json::Num(self.config.normalization_depth() as f64)),
                    ("k", Json::Num(self.config.k() as f64)),
                    ("t", Json::Num(self.config.t() as f64)),
                    ("prefix_bits", Json::Num(self.config.prefix_bits() as f64)),
                ]),
            ),
            (
                "corpus",
                Json::obj(vec![
                    ("trajectories", Json::Num(self.trajectories as f64)),
                    ("points", Json::Num(self.points as f64)),
                    ("routes", Json::Num(self.routes as f64)),
                    ("distinct_terms", Json::Num(self.distinct_terms as f64)),
                    (
                        "generation_seconds",
                        Json::Num(round6(self.generation_seconds)),
                    ),
                ]),
            ),
            (
                "ingest",
                Json::obj(vec![
                    ("consistent", Json::Bool(self.ingest_consistent)),
                    (
                        "runs",
                        Json::Arr(
                            self.ingest
                                .iter()
                                .map(|r| {
                                    Json::obj(vec![
                                        ("threads", Json::Num(r.threads as f64)),
                                        ("seconds", Json::Num(round6(r.seconds))),
                                        ("traj_per_sec", Json::Num(round3(r.traj_per_sec))),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "query",
                Json::obj(vec![
                    ("count", Json::Num(self.scenario.queries as f64)),
                    ("limit", Json::Num(self.query_limit as f64)),
                    (
                        "latency_ms",
                        Json::obj(vec![
                            ("p50", Json::Num(round6(self.latency.p50))),
                            ("p95", Json::Num(round6(self.latency.p95))),
                            ("p99", Json::Num(round6(self.latency.p99))),
                            ("mean", Json::Num(round6(self.latency.mean))),
                            ("max", Json::Num(round6(self.latency.max))),
                        ]),
                    ),
                    (
                        "batch_runs",
                        Json::Arr(
                            self.query_batches
                                .iter()
                                .map(|r| {
                                    Json::obj(vec![
                                        ("threads", Json::Num(r.threads as f64)),
                                        ("seconds", Json::Num(round6(r.seconds))),
                                        ("queries_per_sec", Json::Num(round3(r.queries_per_sec))),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

// The latency percentile definition is shared with the load client
// (`geodabs_serve::percentile`, nearest-rank) so serve-side and
// bench-side numbers stay comparable.
use geodabs_serve::percentile;

/// Runs a scenario: generates its dataset, builds the index once per
/// thread count (timing batch ingest), then measures per-query latency
/// and batch-query throughput at the same thread counts.
///
/// Deterministic workload, non-deterministic timings — run on quiet
/// hardware for comparable numbers.
pub fn run_scenario(scenario: &Scenario, threads: &[usize]) -> WorkloadReport {
    assert!(!threads.is_empty(), "need at least one thread count");
    let started = Instant::now();
    let dataset = generate(scenario);
    let generation_seconds = started.elapsed().as_secs_f64();

    let items: Vec<(TrajId, &Trajectory)> = dataset
        .records()
        .iter()
        .map(|r| (r.id, &r.trajectory))
        .collect();
    let config = GeodabConfig::default();

    // Ingest: one full build per thread count. The thread-1 build is the
    // serial reference; `consistent` records that every other build
    // reached the same (len, term_count).
    let mut ingest = Vec::with_capacity(threads.len());
    let mut shapes: Vec<(usize, usize)> = Vec::with_capacity(threads.len());
    let mut index = GeodabIndex::new(config);
    for &t in threads {
        let mut built = GeodabIndex::new(config);
        let started = Instant::now();
        built.insert_batch_threads(&items, t);
        let seconds = started.elapsed().as_secs_f64();
        ingest.push(IngestRun {
            threads: t,
            seconds,
            traj_per_sec: items.len() as f64 / seconds.max(1e-9),
        });
        shapes.push((built.len(), built.term_count()));
        index = built;
    }
    let ingest_consistent = shapes.windows(2).all(|w| w[0] == w[1]);

    // Queries: a sequential pass for the latency distribution, then one
    // batch run per thread count for throughput.
    let query_limit = 10;
    let options = SearchOptions::default().limit(query_limit);
    let queries: Vec<Trajectory> = dataset
        .queries()
        .iter()
        .map(|q| q.trajectory.clone())
        .collect();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(queries.len());
    for query in &queries {
        let started = Instant::now();
        let hits = index.search(query, &options);
        latencies_ms.push(started.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(hits);
    }
    latencies_ms.sort_by(f64::total_cmp);
    let latency = LatencyMs {
        p50: percentile(&latencies_ms, 50.0),
        p95: percentile(&latencies_ms, 95.0),
        p99: percentile(&latencies_ms, 99.0),
        mean: latencies_ms.iter().sum::<f64>() / latencies_ms.len().max(1) as f64,
        max: latencies_ms.last().copied().unwrap_or(0.0),
    };
    let mut query_batches = Vec::with_capacity(threads.len());
    for &t in threads {
        let started = Instant::now();
        let all = index.search_batch_threads(&queries, &options, t);
        let seconds = started.elapsed().as_secs_f64();
        std::hint::black_box(&all);
        query_batches.push(QueryBatchRun {
            threads: t,
            seconds,
            queries_per_sec: queries.len() as f64 / seconds.max(1e-9),
        });
    }

    WorkloadReport {
        scenario: scenario.clone(),
        config,
        trajectories: dataset.records().len(),
        points: dataset.total_points(),
        routes: dataset.routes().len(),
        distinct_terms: index.term_count(),
        generation_seconds,
        ingest_consistent,
        ingest,
        query_limit,
        latency,
        query_batches,
    }
}

/// Everything one cold-start run measured: how fast engine state moves
/// to and from its snapshot form, and how that compares to rebuilding
/// the index from raw trajectories.
#[derive(Debug, Clone, PartialEq)]
pub struct ColdStartReport {
    /// The scenario that ran (normally [`COLD_START`]).
    pub scenario: Scenario,
    /// The fingerprinting configuration used.
    pub config: GeodabConfig,
    /// Trajectories in the corpus.
    pub trajectories: usize,
    /// Total points across the corpus.
    pub points: usize,
    /// Distinct geodab terms after ingest.
    pub distinct_terms: usize,
    /// Seconds spent generating the dataset (not part of any rate).
    pub generation_seconds: f64,
    /// Worker threads used for the re-ingest build.
    pub reingest_threads: usize,
    /// Wall-clock seconds to build the index from raw trajectories.
    pub reingest_seconds: f64,
    /// Snapshot size in bytes.
    pub snapshot_bytes: usize,
    /// Wall-clock seconds to serialize the snapshot.
    pub save_seconds: f64,
    /// Wall-clock seconds to materialize the index from the snapshot.
    pub load_seconds: f64,
    /// `reingest_seconds / load_seconds` — how much faster a cold start
    /// from a snapshot is than re-ingesting the corpus.
    pub restore_speedup: f64,
    /// Whether the restored index answered every scenario query exactly
    /// like the freshly built one.
    pub consistent: bool,
}

impl ColdStartReport {
    /// The canonical report file name: `BENCH_<scenario>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.scenario.name)
    }

    /// Snapshot serialization bandwidth in MB/s (decimal megabytes).
    pub fn save_mb_per_s(&self) -> f64 {
        self.snapshot_bytes as f64 / 1e6 / self.save_seconds.max(1e-9)
    }

    /// Snapshot materialization bandwidth in MB/s (decimal megabytes).
    pub fn load_mb_per_s(&self) -> f64 {
        self.snapshot_bytes as f64 / 1e6 / self.load_seconds.max(1e-9)
    }

    /// Serializes the report. Shares `schema_version` with the workload
    /// report; the `kind` field marks the different shape, so the ingest
    /// perf gate rejects a cold-start report as a baseline (it has no
    /// `ingest.runs`).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Num(SCHEMA_VERSION as f64)),
            ("kind", Json::Str("cold-start".into())),
            ("scenario", Json::Str(self.scenario.name.clone())),
            ("preset", Json::Str(self.scenario.preset.name().into())),
            ("seed", Json::Num(self.scenario.seed as f64)),
            (
                "corpus",
                Json::obj(vec![
                    ("trajectories", Json::Num(self.trajectories as f64)),
                    ("points", Json::Num(self.points as f64)),
                    ("distinct_terms", Json::Num(self.distinct_terms as f64)),
                    (
                        "generation_seconds",
                        Json::Num(round6(self.generation_seconds)),
                    ),
                ]),
            ),
            (
                "snapshot",
                Json::obj(vec![
                    ("bytes", Json::Num(self.snapshot_bytes as f64)),
                    ("save_seconds", Json::Num(round6(self.save_seconds))),
                    ("save_mb_per_s", Json::Num(round3(self.save_mb_per_s()))),
                    ("load_seconds", Json::Num(round6(self.load_seconds))),
                    ("load_mb_per_s", Json::Num(round3(self.load_mb_per_s()))),
                    ("reingest_threads", Json::Num(self.reingest_threads as f64)),
                    ("reingest_seconds", Json::Num(round6(self.reingest_seconds))),
                    ("restore_speedup", Json::Num(round3(self.restore_speedup))),
                    ("consistent", Json::Bool(self.consistent)),
                ]),
            ),
        ])
    }
}

/// Runs the cold-start scenario: build the index once from raw
/// trajectories (timed re-ingest at `threads` workers), serialize it to a
/// v2 snapshot, materialize it back, and verify the restored index
/// answers every scenario query identically to the built one.
///
/// Deterministic workload, non-deterministic timings — run on quiet
/// hardware for comparable numbers.
pub fn run_cold_start(scenario: &Scenario, threads: usize) -> ColdStartReport {
    let started = Instant::now();
    let dataset = generate(scenario);
    let generation_seconds = started.elapsed().as_secs_f64();

    let items: Vec<(TrajId, &Trajectory)> = dataset
        .records()
        .iter()
        .map(|r| (r.id, &r.trajectory))
        .collect();
    let config = GeodabConfig::default();

    let mut index = GeodabIndex::new(config);
    let started = Instant::now();
    index.insert_batch_threads(&items, threads.max(1));
    let reingest_seconds = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let snapshot = index.to_snapshot();
    let save_seconds = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let restored = GeodabIndex::from_snapshot(&snapshot).expect("own snapshot always loads");
    let load_seconds = started.elapsed().as_secs_f64();

    let options = SearchOptions::default().limit(10);
    let consistent = restored.len() == index.len()
        && restored.term_count() == index.term_count()
        && dataset.queries().iter().all(|q| {
            restored.search(&q.trajectory, &options) == index.search(&q.trajectory, &options)
        });

    ColdStartReport {
        scenario: scenario.clone(),
        config,
        trajectories: dataset.records().len(),
        points: dataset.total_points(),
        distinct_terms: index.term_count(),
        generation_seconds,
        reingest_threads: threads.max(1),
        reingest_seconds,
        snapshot_bytes: snapshot.len(),
        save_seconds,
        load_seconds,
        restore_speedup: reingest_seconds / load_seconds.max(1e-9),
        consistent,
    }
}

/// Any index backend behind one value — the common currency of the
/// snapshot CLI and the serving layer, which both must host whatever
/// backend a `GDAB` v2 snapshot happens to hold.
#[derive(Debug)]
pub enum AnyIndex {
    /// The paper's geodab index.
    Geodab(GeodabIndex),
    /// The geohash-cell baseline.
    Geohash(GeohashIndex),
    /// The sharded cluster index.
    Cluster(ClusterIndex),
    /// One node's standalone slice of a sharded cluster — what a
    /// remote shard server hosts.
    Node(ShardNode),
}

impl AnyIndex {
    /// Materializes whichever backend a snapshot holds (v1 blobs load as
    /// geodab through the legacy path).
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] a malformed container produces; an unknown
    /// backend tag is [`SnapshotError::Corrupt`].
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<AnyIndex, SnapshotError> {
        match store::peek_version(bytes)? {
            store::VERSION_V1 => Ok(AnyIndex::Geodab(codec::decode(bytes)?)),
            _ => {
                let reader = store::SnapshotReader::parse(bytes)?;
                match reader.backend() {
                    Some(store::BackendKind::Geodab) => {
                        Ok(AnyIndex::Geodab(GeodabIndex::from_snapshot(bytes)?))
                    }
                    Some(store::BackendKind::Geohash) => {
                        Ok(AnyIndex::Geohash(GeohashIndex::from_snapshot(bytes)?))
                    }
                    Some(store::BackendKind::Cluster) => {
                        Ok(AnyIndex::Cluster(ClusterIndex::from_snapshot(bytes)?))
                    }
                    Some(store::BackendKind::Node) => {
                        Ok(AnyIndex::Node(ShardNode::from_snapshot(bytes)?))
                    }
                    None => Err(SnapshotError::UnknownBackend(reader.backend_tag())),
                }
            }
        }
    }

    /// Builds an empty index of the named backend under the default
    /// configuration (`cluster` gets `shards` × `nodes`).
    ///
    /// # Errors
    ///
    /// An unknown backend name, or an invalid cluster shape.
    pub fn empty(backend: &str, shards: u64, nodes: usize) -> Result<AnyIndex, String> {
        let config = GeodabConfig::default();
        match backend {
            "geodab" => Ok(AnyIndex::Geodab(GeodabIndex::new(config))),
            "geohash" => Ok(AnyIndex::Geohash(GeohashIndex::new(
                config.normalization_depth(),
            ))),
            "cluster" => Ok(AnyIndex::Cluster(
                ClusterIndex::new(config, shards, nodes).map_err(|e| e.to_string())?,
            )),
            // A shard node needs a node id on top of the cluster shape;
            // `serve --shard-id` constructs it directly.
            other => Err(format!(
                "unknown backend {other:?} (geodab|geohash|cluster)"
            )),
        }
    }

    /// The backend's stable name.
    pub fn backend_name(&self) -> &'static str {
        match self {
            AnyIndex::Geodab(_) => "geodab",
            AnyIndex::Geohash(_) => "geohash",
            AnyIndex::Cluster(_) => "cluster",
            AnyIndex::Node(_) => "node",
        }
    }

    /// Distinct terms (active shards for the cluster backend).
    pub fn term_count(&self) -> usize {
        match self {
            AnyIndex::Geodab(index) => index.term_count(),
            AnyIndex::Geohash(index) => index.term_count(),
            AnyIndex::Cluster(index) => index.active_shards(),
            AnyIndex::Node(index) => index.term_count(),
        }
    }

    /// Applies one write-ahead-log record — the replay loop every
    /// boot-from-log shares (`serve --wal-dir`, `wal replay`, the bench
    /// recovery phase).
    ///
    /// # Errors
    ///
    /// A shard-server record (`InsertFingerprints`) replayed onto a
    /// backend that is not a shard node: the log belongs to a different
    /// kind of server, so booting from it would silently drop writes.
    pub fn apply_wal_op(&mut self, op: WalOp) -> Result<(), String> {
        match op {
            WalOp::Insert { id, trajectory } => {
                TrajectoryIndex::insert(self, id, &trajectory);
                Ok(())
            }
            WalOp::Remove { id } => {
                TrajectoryIndex::remove(self, id);
                Ok(())
            }
            WalOp::InsertFingerprints { id, terms } => match self {
                AnyIndex::Node(node) => {
                    node.insert_fingerprints(id, Fingerprints::from_ordered(terms));
                    Ok(())
                }
                other => Err(format!(
                    "cannot replay a shard-server log record onto the {} backend",
                    other.backend_name()
                )),
            },
        }
    }

    /// An empty index of the same backend and shape (configuration,
    /// depth, cluster geometry) as `self` — what a verification rebuild
    /// re-ingests into.
    fn fresh_twin(&self) -> Result<AnyIndex, String> {
        Ok(match self {
            AnyIndex::Geodab(index) => AnyIndex::Geodab(GeodabIndex::new(*index.config())),
            AnyIndex::Geohash(index) => AnyIndex::Geohash(GeohashIndex::new(index.depth())),
            AnyIndex::Cluster(index) => AnyIndex::Cluster(
                ClusterIndex::new(
                    *index.config(),
                    index.router().num_shards(),
                    index.router().num_nodes(),
                )
                .map_err(|e| e.to_string())?,
            ),
            AnyIndex::Node(index) => AnyIndex::Node(
                ShardNode::new(
                    *index.config(),
                    index.router().num_shards(),
                    index.router().num_nodes(),
                    index.node_id(),
                )
                .map_err(|e| e.to_string())?,
            ),
        })
    }
}

impl TrajectoryIndex for AnyIndex {
    fn insert(&mut self, id: TrajId, trajectory: &Trajectory) {
        match self {
            AnyIndex::Geodab(index) => index.insert(id, trajectory),
            AnyIndex::Geohash(index) => index.insert(id, trajectory),
            AnyIndex::Cluster(index) => TrajectoryIndex::insert(index, id, trajectory),
            AnyIndex::Node(index) => index.insert(id, trajectory),
        }
    }

    fn remove(&mut self, id: TrajId) -> bool {
        match self {
            AnyIndex::Geodab(index) => TrajectoryIndex::remove(index, id),
            AnyIndex::Geohash(index) => TrajectoryIndex::remove(index, id),
            AnyIndex::Cluster(index) => ClusterIndex::remove(index, id),
            AnyIndex::Node(index) => index.remove(id),
        }
    }

    fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult> {
        match self {
            AnyIndex::Geodab(index) => TrajectoryIndex::search(index, query, options),
            AnyIndex::Geohash(index) => TrajectoryIndex::search(index, query, options),
            AnyIndex::Cluster(index) => ClusterIndex::search(index, query, options),
            AnyIndex::Node(index) => index.search(query, options),
        }
    }

    fn len(&self) -> usize {
        match self {
            AnyIndex::Geodab(index) => TrajectoryIndex::len(index),
            AnyIndex::Geohash(index) => TrajectoryIndex::len(index),
            AnyIndex::Cluster(index) => ClusterIndex::len(index),
            AnyIndex::Node(index) => index.len(),
        }
    }

    fn ids(&self) -> impl Iterator<Item = TrajId> + '_ {
        let ids: Vec<TrajId> = match self {
            AnyIndex::Geodab(index) => TrajectoryIndex::ids(index).collect(),
            AnyIndex::Geohash(index) => TrajectoryIndex::ids(index).collect(),
            AnyIndex::Cluster(index) => ClusterIndex::ids(index).collect(),
            AnyIndex::Node(index) => index.ids().collect(),
        };
        ids.into_iter()
    }

    fn insert_batch<'a, I>(&mut self, items: I)
    where
        I: IntoIterator<Item = (TrajId, &'a Trajectory)>,
    {
        match self {
            AnyIndex::Geodab(index) => index.insert_batch(items),
            AnyIndex::Geohash(index) => index.insert_batch(items),
            AnyIndex::Cluster(index) => index.insert_batch(items),
            // A node keeps only its routed slice; batched fingerprint
            // fan-out buys little, so ingest serially.
            AnyIndex::Node(index) => {
                for (id, trajectory) in items {
                    index.insert(id, trajectory);
                }
            }
        }
    }
}

/// Any backend can be served; the serving layer and the snapshot CLI
/// host the same value.
impl geodabs_serve::ServeBackend for AnyIndex {
    fn backend_name(&self) -> &'static str {
        AnyIndex::backend_name(self)
    }

    fn len(&self) -> usize {
        TrajectoryIndex::len(self)
    }

    fn term_count(&self) -> usize {
        AnyIndex::term_count(self)
    }

    fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult> {
        TrajectoryIndex::search(self, query, options)
    }

    fn search_fingerprints(
        &self,
        ordered: &[u32],
        options: &SearchOptions,
    ) -> Result<Vec<SearchResult>, &'static str> {
        match self {
            AnyIndex::Geodab(index) => {
                geodabs_serve::ServeBackend::search_fingerprints(index, ordered, options)
            }
            AnyIndex::Geohash(index) => {
                geodabs_serve::ServeBackend::search_fingerprints(index, ordered, options)
            }
            AnyIndex::Cluster(index) => {
                geodabs_serve::ServeBackend::search_fingerprints(index, ordered, options)
            }
            AnyIndex::Node(index) => {
                geodabs_serve::ServeBackend::search_fingerprints(index, ordered, options)
            }
        }
    }

    fn insert(&mut self, id: TrajId, trajectory: &Trajectory) {
        TrajectoryIndex::insert(self, id, trajectory);
    }

    fn remove(&mut self, id: TrajId) -> bool {
        TrajectoryIndex::remove(self, id)
    }

    fn to_snapshot_bytes(&self) -> Option<Vec<u8>> {
        match self {
            AnyIndex::Geodab(index) => geodabs_serve::ServeBackend::to_snapshot_bytes(index),
            AnyIndex::Geohash(index) => geodabs_serve::ServeBackend::to_snapshot_bytes(index),
            AnyIndex::Cluster(index) => geodabs_serve::ServeBackend::to_snapshot_bytes(index),
            AnyIndex::Node(index) => geodabs_serve::ServeBackend::to_snapshot_bytes(index),
        }
    }

    fn into_shards(self, shards: usize) -> Result<geodabs_serve::ShardedIndex, String> {
        match self {
            AnyIndex::Geodab(index) => geodabs_serve::ServeBackend::into_shards(index, shards),
            AnyIndex::Cluster(index) => geodabs_serve::ServeBackend::into_shards(index, shards),
            AnyIndex::Geohash(index) => geodabs_serve::ServeBackend::into_shards(index, shards),
            AnyIndex::Node(index) => geodabs_serve::ServeBackend::into_shards(index, shards),
        }
    }

    fn shard_query(
        &self,
        ordered: &[u32],
        options: &SearchOptions,
    ) -> Result<Vec<SearchResult>, &'static str> {
        match self {
            AnyIndex::Node(index) => {
                geodabs_serve::ServeBackend::shard_query(index, ordered, options)
            }
            _ => Err("this backend is not a shard node; start the server with --shard-id"),
        }
    }

    fn shard_insert(&mut self, id: TrajId, ordered: &[u32]) -> Result<(), &'static str> {
        match self {
            AnyIndex::Node(index) => geodabs_serve::ServeBackend::shard_insert(index, id, ordered),
            _ => Err("this backend is not a shard node; start the server with --shard-id"),
        }
    }
}

/// The result cap every verification replay queries with.
pub const VERIFY_LIMIT: usize = 10;

/// Verifies a restored (or warm-started) index against a fresh rebuild:
/// re-ingests the scenario's corpus into an empty index of the same
/// backend and shape, demands the same index shape, then replays every
/// scenario query and demands bit-identical rankings. The one
/// query-replay loop behind `geodabs snapshot load --verify rebuild` and
/// `geodabs serve --verify rebuild`.
///
/// Returns the number of queries that were compared.
///
/// # Errors
///
/// A message naming the divergence (shape mismatch or the count of
/// differing queries).
pub fn verify_against_rebuild(restored: &AnyIndex, scenario: &Scenario) -> Result<usize, String> {
    let dataset = generate(scenario);
    let items: Vec<(TrajId, &Trajectory)> = dataset
        .records()
        .iter()
        .map(|r| (r.id, &r.trajectory))
        .collect();
    let mut fresh = restored.fresh_twin()?;
    fresh.insert_batch(items);
    if TrajectoryIndex::len(&fresh) != TrajectoryIndex::len(restored)
        || fresh.term_count() != restored.term_count()
    {
        return Err(format!(
            "rebuilt {} index shape differs from the loaded one \
             ({} vs {} trajectories, {} vs {} terms)",
            restored.backend_name(),
            TrajectoryIndex::len(&fresh),
            TrajectoryIndex::len(restored),
            fresh.term_count(),
            restored.term_count()
        ));
    }
    let options = SearchOptions::default().limit(VERIFY_LIMIT);
    let mismatches = dataset
        .queries()
        .iter()
        .filter(|q| {
            TrajectoryIndex::search(restored, &q.trajectory, &options)
                != TrajectoryIndex::search(&fresh, &q.trajectory, &options)
        })
        .count();
    if mismatches > 0 {
        return Err(format!(
            "{mismatches} of {} queries answered differently than a fresh rebuild of \
             scenario {}",
            dataset.queries().len(),
            scenario.name
        ));
    }
    Ok(dataset.queries().len())
}

/// One server-side stage's latency distribution over a load run, from
/// the before/after delta of the server's own histograms — the view the
/// client cannot measure (decode, engine scan, merge, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStage {
    /// Stage name (e.g. `decode`, `engine`, `merge`, `request`).
    pub name: String,
    /// Samples the stage recorded during the run.
    pub count: u64,
    /// Median, microseconds (nearest-rank, bucket upper bound).
    pub p50_us: u64,
    /// 95th percentile, microseconds.
    pub p95_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
}

/// The server's own telemetry over a load run: per-stage latency deltas
/// plus the mux saturation gauges, scraped via the metrics frame before
/// and after the ladder.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerSide {
    /// Per-stage latency distributions, server clock.
    pub stages: Vec<ServerStage>,
    /// Peak simultaneously-busy mux workers over the server's lifetime.
    pub workers_busy_peak: u64,
    /// Peak frames in flight (decoded, not yet answered).
    pub frames_in_flight_peak: u64,
    /// Peak concurrent connections.
    pub connections_peak: u64,
}

/// Everything one serving run measured: client-observed throughput and
/// latency per concurrent-connection count, over loopback or against a
/// remote server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// The workload scenario supplying corpus and queries.
    pub scenario: Scenario,
    /// The served backend's name (as reported by the server's `Stats`).
    pub backend: String,
    /// Trajectories held by the server.
    pub trajectories: usize,
    /// Result cap used for all queries.
    pub query_limit: usize,
    /// Whether responses were verified against in-process rankings.
    pub verified: bool,
    /// One load point per measured connection count.
    pub points: Vec<LoadRun>,
    /// Server-side telemetry over the whole ladder (`None` unless the
    /// driver scraped the metrics frame, e.g. `loadtest
    /// --server-metrics`).
    pub server: Option<ServerSide>,
}

impl ServeReport {
    /// The canonical report file name: `BENCH_serve.json`, regardless of
    /// which workload scenario supplied the traffic (the `scenario`
    /// field in the report records that).
    pub fn file_name(&self) -> String {
        "BENCH_serve.json".to_string()
    }

    /// Whether every response matched and every connection survived.
    pub fn consistent(&self) -> bool {
        self.points.iter().all(|p| p.mismatches == 0)
    }

    /// Serializes the report. Shares `schema_version` with the workload
    /// report; the `kind` field marks the different shape, so the ingest
    /// perf gate rejects a serve report as a baseline.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema_version", Json::Num(SCHEMA_VERSION as f64)),
            ("kind", Json::Str("serve".into())),
            ("scenario", Json::Str(self.scenario.name.clone())),
            ("preset", Json::Str(self.scenario.preset.name().into())),
            ("seed", Json::Num(self.scenario.seed as f64)),
            ("backend", Json::Str(self.backend.clone())),
            (
                "corpus",
                Json::obj(vec![("trajectories", Json::Num(self.trajectories as f64))]),
            ),
            (
                "query",
                Json::obj(vec![
                    ("count", Json::Num(self.scenario.queries as f64)),
                    ("limit", Json::Num(self.query_limit as f64)),
                    ("verified", Json::Bool(self.verified)),
                    ("consistent", Json::Bool(self.consistent())),
                ]),
            ),
            (
                "connections",
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("connections", Json::Num(p.connections as f64)),
                                ("requests", Json::Num(p.requests as f64)),
                                ("mismatches", Json::Num(p.mismatches as f64)),
                                ("seconds", Json::Num(round6(p.seconds))),
                                ("qps", Json::Num(round3(p.qps))),
                                (
                                    "latency_ms",
                                    Json::obj(vec![
                                        ("p50", Json::Num(round6(p.p50_ms))),
                                        ("p95", Json::Num(round6(p.p95_ms))),
                                        ("p99", Json::Num(round6(p.p99_ms))),
                                    ]),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(server) = &self.server {
            fields.push((
                "server",
                Json::obj(vec![
                    (
                        "stages",
                        Json::Arr(
                            server
                                .stages
                                .iter()
                                .map(|s| {
                                    Json::obj(vec![
                                        ("name", Json::Str(s.name.clone())),
                                        ("count", Json::Num(s.count as f64)),
                                        (
                                            "latency_us",
                                            Json::obj(vec![
                                                ("p50", Json::Num(s.p50_us as f64)),
                                                ("p95", Json::Num(s.p95_us as f64)),
                                                ("p99", Json::Num(s.p99_us as f64)),
                                            ]),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "workers_busy_peak",
                        Json::Num(server.workers_busy_peak as f64),
                    ),
                    (
                        "frames_in_flight_peak",
                        Json::Num(server.frames_in_flight_peak as f64),
                    ),
                    (
                        "connections_peak",
                        Json::Num(server.connections_peak as f64),
                    ),
                ]),
            ));
        }
        Json::obj(fields)
    }
}

/// Drives the connection ladder against an already-listening server:
/// one closed-loop load point per ladder entry, each for
/// `seconds_per_point`. `expected` installs per-query bit-identity
/// verification.
///
/// # Errors
///
/// The first connection or wire error — broken connections fail the run
/// loudly instead of deflating the numbers.
/// A single-shard [`ServerConfig`] with `workers` mux workers — the
/// monolithic-server shape every loopback harness here boots with
/// unless it is explicitly exercising in-process shards.
fn mux_config(workers: usize) -> Result<ServerConfig, String> {
    ServerConfig::builder()
        .mux_workers(workers)
        .build()
        .map_err(|e| e.to_string())
}

pub fn run_load_ladder(
    addr: &str,
    queries: Vec<Trajectory>,
    options: SearchOptions,
    expected: Option<Vec<Vec<SearchResult>>>,
    ladder: &[usize],
    seconds_per_point: f64,
) -> Result<Vec<LoadRun>, String> {
    let mut load = LoadClient::new(addr.to_string(), queries, options);
    if let Some(expected) = expected {
        load = load.expect_results(expected);
    }
    let duration = Duration::from_secs_f64(seconds_per_point.max(0.05));
    let mut points = Vec::with_capacity(ladder.len());
    for &connections in ladder {
        let point = load
            .run(connections, duration)
            .map_err(|e| format!("load run at {connections} connection(s): {e}"))?;
        points.push(point);
    }
    Ok(points)
}

/// Runs the serving scenario end to end on loopback: ingest the
/// scenario's corpus into a geodab index, serve it from an OS-assigned
/// port, then drive the connection ladder `1, 2, 4, …` (capped by
/// `max_connections`) with the scenario's queries — every response
/// verified bit-identical against the in-process ranking.
///
/// # Errors
///
/// Bind/connection failures, or any response mismatch.
pub fn run_serve(
    scenario: &Scenario,
    max_connections: usize,
    seconds_per_point: f64,
) -> Result<ServeReport, String> {
    let dataset = generate(scenario);
    let items: Vec<(TrajId, &Trajectory)> = dataset
        .records()
        .iter()
        .map(|r| (r.id, &r.trajectory))
        .collect();
    let mut index = AnyIndex::empty("geodab", 0, 0)?;
    index.insert_batch(items);
    let trajectories = TrajectoryIndex::len(&index);
    let backend = index.backend_name().to_string();

    let query_limit = VERIFY_LIMIT;
    let options = SearchOptions::default().limit(query_limit);
    let queries: Vec<Trajectory> = dataset
        .queries()
        .iter()
        .map(|q| q.trajectory.clone())
        .collect();
    let expected: Vec<Vec<SearchResult>> = queries
        .iter()
        .map(|q| TrajectoryIndex::search(&index, q, &options))
        .collect();

    // The multiplexer sweeps many connections per worker, so the pool
    // no longer needs to scale with the ladder width — one worker per
    // core serves even the widest point without queueing artifacts.
    let config = ServerConfig::builder()
        .mux_workers(geodabs_index::batch::default_threads())
        .build()
        .map_err(|e| e.to_string())?;
    let server =
        Server::bind("127.0.0.1:0", index, config).map_err(|e| format!("binding loopback: {e}"))?;
    let running = server.spawn();
    let ladder = thread_ladder(max_connections);
    let points = run_load_ladder(
        &running.addr().to_string(),
        queries,
        options,
        Some(expected),
        &ladder,
        seconds_per_point,
    );
    running
        .shutdown()
        .map_err(|e| format!("server shutdown: {e}"))?;
    Ok(ServeReport {
        scenario: scenario.clone(),
        backend,
        trajectories,
        query_limit,
        verified: true,
        points: points?,
        server: None,
    })
}

/// Acknowledged-write latency under one WAL sync policy: the client
/// round-trip of `Insert` requests against a durable loopback server,
/// where every ack implies the record hit the log per that policy.
#[derive(Debug, Clone, PartialEq)]
pub struct AckRun {
    /// The sync policy, as `SyncPolicy::to_string` renders it.
    pub policy: String,
    /// Acknowledged inserts measured.
    pub inserts: usize,
    /// Wall-clock for the whole insert stream, seconds.
    pub seconds: f64,
    /// Acknowledged writes per second.
    pub acks_per_sec: f64,
    /// Median ack latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile ack latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile ack latency, milliseconds.
    pub p99_ms: f64,
}

/// Everything one durability run measured: ack latency per sync policy,
/// replay-on-boot recovery, and query latency with background
/// compaction off vs on. Serialize with [`DurabilityReport::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityReport {
    /// The workload scenario supplying corpus and queries.
    pub scenario: Scenario,
    /// The served backend's name.
    pub backend: String,
    /// One insert stream per measured sync policy.
    pub acks: Vec<AckRun>,
    /// Log records replayed during the recovery phase.
    pub replayed_records: usize,
    /// Wall-clock to scan the log and rebuild the index, seconds.
    pub recovery_seconds: f64,
    /// Trajectories live after recovery (must equal the acked inserts).
    pub recovered_trajectories: usize,
    /// Query p95 with the WAL on but compaction off, milliseconds.
    pub baseline_query_p95_ms: f64,
    /// Query p95 while the compactor folds the log concurrently,
    /// milliseconds.
    pub compacting_query_p95_ms: f64,
    /// The snapshot watermark after the compacting phase (nonzero iff
    /// at least one compaction actually ran).
    pub compacted_watermark: u64,
    /// Whether recovery restored every acked write and compaction
    /// actually ran during the concurrent phase.
    pub consistent: bool,
}

impl DurabilityReport {
    /// The canonical report file name: `BENCH_durability.json`.
    pub fn file_name(&self) -> String {
        "BENCH_durability.json".to_string()
    }

    /// Serializes the report. Shares `schema_version` with the workload
    /// report; the `kind` field marks the different shape, so the ingest
    /// perf gate rejects a durability report as a baseline.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Num(SCHEMA_VERSION as f64)),
            ("kind", Json::Str("durability".into())),
            ("scenario", Json::Str(self.scenario.name.clone())),
            ("preset", Json::Str(self.scenario.preset.name().into())),
            ("seed", Json::Num(self.scenario.seed as f64)),
            ("backend", Json::Str(self.backend.clone())),
            (
                "acks",
                Json::Arr(
                    self.acks
                        .iter()
                        .map(|run| {
                            Json::obj(vec![
                                ("policy", Json::Str(run.policy.clone())),
                                ("inserts", Json::Num(run.inserts as f64)),
                                ("seconds", Json::Num(round6(run.seconds))),
                                ("acks_per_sec", Json::Num(round3(run.acks_per_sec))),
                                (
                                    "latency_ms",
                                    Json::obj(vec![
                                        ("p50", Json::Num(round6(run.p50_ms))),
                                        ("p95", Json::Num(round6(run.p95_ms))),
                                        ("p99", Json::Num(round6(run.p99_ms))),
                                    ]),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "recovery",
                Json::obj(vec![
                    ("records", Json::Num(self.replayed_records as f64)),
                    ("seconds", Json::Num(round6(self.recovery_seconds))),
                    (
                        "trajectories",
                        Json::Num(self.recovered_trajectories as f64),
                    ),
                ]),
            ),
            (
                "compaction",
                Json::obj(vec![
                    (
                        "baseline_query_p95_ms",
                        Json::Num(round6(self.baseline_query_p95_ms)),
                    ),
                    (
                        "concurrent_query_p95_ms",
                        Json::Num(round6(self.compacting_query_p95_ms)),
                    ),
                    ("watermark", Json::Num(self.compacted_watermark as f64)),
                ]),
            ),
            ("consistent", Json::Bool(self.consistent)),
        ])
    }
}

/// A scratch directory for one durability phase; recreated empty.
fn durability_dir(tag: &str) -> Result<std::path::PathBuf, String> {
    let dir = std::env::temp_dir().join(format!(
        "geodabs-bench-durability-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    Ok(dir)
}

/// Measures query latency percentiles against a running durable server
/// while a writer connection concurrently re-inserts corpus
/// trajectories (replace-on-reinsert keeps state stable), for roughly
/// `seconds` of wall clock. Returns the sorted query latencies in
/// milliseconds.
fn query_under_write_load(
    addr: std::net::SocketAddr,
    queries: &[Trajectory],
    options: &SearchOptions,
    writes: &[(TrajId, Trajectory)],
    seconds: f64,
) -> Result<Vec<f64>, String> {
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| -> Result<u64, String> {
            let mut client = Client::connect(addr).map_err(|e| format!("writer connect: {e}"))?;
            let mut written = 0u64;
            'outer: loop {
                for (id, trajectory) in writes {
                    if stop.load(std::sync::atomic::Ordering::SeqCst) {
                        break 'outer;
                    }
                    client
                        .insert(*id, trajectory)
                        .map_err(|e| format!("writer insert: {e}"))?;
                    written += 1;
                }
            }
            Ok(written)
        });
        let mut client = Client::connect(addr).map_err(|e| format!("reader connect: {e}"))?;
        let deadline = Instant::now() + Duration::from_secs_f64(seconds.max(0.05));
        let mut latencies = Vec::new();
        'measure: loop {
            for query in queries {
                if Instant::now() >= deadline {
                    break 'measure;
                }
                let t0 = Instant::now();
                client
                    .query(query, options)
                    .map_err(|e| format!("reader query: {e}"))?;
                latencies.push(t0.elapsed().as_secs_f64() * 1e3);
            }
        }
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        let written = writer.join().expect("writer thread panicked")?;
        if written == 0 {
            return Err("writer made no progress during the measurement".into());
        }
        latencies.sort_by(f64::total_cmp);
        Ok(latencies)
    })
}

/// Runs the durability scenario end to end on loopback:
///
/// 1. **Ack latency** — for each sync policy (`always`, a 5 ms
///    interval, `never`), stream `max_inserts` acknowledged inserts
///    into an empty durable server and record the client-observed ack
///    percentiles.
/// 2. **Recovery** — replay the `always` run's log into a fresh index,
///    timing the scan+rebuild and demanding zero acked-write loss.
/// 3. **Compaction** — serve the full corpus durably and measure query
///    p95 under a concurrent writer, once with compaction off and once
///    with the compactor folding the log continuously; the report
///    records both so CI can see compaction is not blocking readers.
///
/// `max_inserts` bounds phase 1 (capped by the corpus size) and
/// `seconds_per_phase` bounds each phase-3 measurement, so tests can
/// run the whole thing in well under a second.
///
/// # Errors
///
/// I/O, bind and wire failures, or a writer that made no progress.
pub fn run_durability(
    scenario: &Scenario,
    max_inserts: usize,
    seconds_per_phase: f64,
) -> Result<DurabilityReport, String> {
    let dataset = generate(scenario);
    let records = dataset.records();
    let inserts = max_inserts.clamp(1, records.len());
    let queries: Vec<Trajectory> = dataset
        .queries()
        .iter()
        .map(|q| q.trajectory.clone())
        .collect();
    let options = SearchOptions::default().limit(VERIFY_LIMIT);

    // Phase 1: acknowledged-write latency per sync policy.
    let policies = [
        SyncPolicy::Always,
        SyncPolicy::Interval(Duration::from_millis(5)),
        SyncPolicy::Never,
    ];
    let mut acks = Vec::with_capacity(policies.len());
    let mut always_dir = None;
    for (phase, policy) in policies.into_iter().enumerate() {
        let dir = durability_dir(&format!("ack{phase}"))?;
        let wal = Wal::open(&dir, policy).map_err(|e| format!("opening wal: {e}"))?;
        let index = AnyIndex::empty("geodab", 0, 0)?;
        let running = Server::bind("127.0.0.1:0", index, mux_config(2)?)
            .map_err(|e| format!("binding loopback: {e}"))?
            .with_durability(wal, 0, None)
            .spawn();
        let mut client =
            Client::connect(running.addr()).map_err(|e| format!("ack client connect: {e}"))?;
        let mut latencies = Vec::with_capacity(inserts);
        let started = Instant::now();
        for record in &records[..inserts] {
            let t0 = Instant::now();
            client
                .insert(record.id, &record.trajectory)
                .map_err(|e| format!("ack insert: {e}"))?;
            latencies.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        let seconds = started.elapsed().as_secs_f64();
        running
            .shutdown()
            .map_err(|e| format!("ack server shutdown: {e}"))?;
        latencies.sort_by(f64::total_cmp);
        acks.push(AckRun {
            policy: policy.to_string(),
            inserts,
            seconds,
            acks_per_sec: inserts as f64 / seconds.max(1e-9),
            p50_ms: geodabs_serve::percentile(&latencies, 50.0),
            p95_ms: geodabs_serve::percentile(&latencies, 95.0),
            p99_ms: geodabs_serve::percentile(&latencies, 99.0),
        });
        if policy == SyncPolicy::Always {
            always_dir = Some(dir);
        } else {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    // Phase 2: replay-on-boot recovery from the sync-always log — the
    // exact read path `geodabs serve --wal-dir` boots through.
    let dir = always_dir.expect("the always policy ran");
    let recovery_started = Instant::now();
    let mut restored = AnyIndex::empty("geodab", 0, 0)?;
    let mut replayed = 0usize;
    for record in Wal::records(&dir).map_err(|e| format!("recovery scan: {e}"))? {
        restored
            .apply_wal_op(record.op)
            .map_err(|e| format!("recovery replay: {e}"))?;
        replayed += 1;
    }
    let recovery_seconds = recovery_started.elapsed().as_secs_f64();
    let recovered_trajectories = TrajectoryIndex::len(&restored);
    let recovery_consistent = replayed == inserts && recovered_trajectories == inserts;
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 3: query latency under write load, compaction off vs on.
    // Both sides run the full corpus behind a sync-always WAL; the only
    // difference is the background compactor, so the p95 delta isolates
    // what folding the log costs concurrent readers.
    let writes: Vec<(TrajId, Trajectory)> = records
        .iter()
        .take(inserts)
        .map(|r| (r.id, r.trajectory.clone()))
        .collect();
    let measure = |compact_every: Option<Duration>, tag: &str| -> Result<(Vec<f64>, u64), String> {
        let dir = durability_dir(tag)?;
        let wal = Wal::open(&dir, SyncPolicy::Always).map_err(|e| format!("opening wal: {e}"))?;
        let mut index = AnyIndex::empty("geodab", 0, 0)?;
        index.insert_batch(records.iter().map(|r| (r.id, &r.trajectory)));
        let running = Server::bind("127.0.0.1:0", index, mux_config(2)?)
            .map_err(|e| format!("binding loopback: {e}"))?
            .with_durability(wal, 0, compact_every)
            .spawn();
        let latencies = query_under_write_load(
            running.addr(),
            &queries,
            &options,
            &writes,
            seconds_per_phase,
        )?;
        let stats = Client::connect(running.addr())
            .map_err(|e| format!("stats connect: {e}"))?
            .stats_durable()
            .map_err(|e| format!("stats probe: {e}"))?;
        let watermark = stats.durability.map(|d| d.snapshot_watermark).unwrap_or(0);
        running
            .shutdown()
            .map_err(|e| format!("phase-3 server shutdown: {e}"))?;
        let _ = std::fs::remove_dir_all(&dir);
        Ok((latencies, watermark))
    };
    let (baseline_latencies, baseline_watermark) = measure(None, "compact-off")?;
    // Fold continuously (a 1 ms period re-arms as fast as the compactor
    // can cycle) so the measurement overlaps real compactions.
    let (compacting_latencies, compacted_watermark) =
        measure(Some(Duration::from_millis(1)), "compact-on")?;

    let consistent = recovery_consistent && baseline_watermark == 0 && compacted_watermark > 0;
    Ok(DurabilityReport {
        scenario: scenario.clone(),
        backend: "geodab".to_string(),
        acks,
        replayed_records: replayed,
        recovery_seconds,
        recovered_trajectories,
        baseline_query_p95_ms: geodabs_serve::percentile(&baseline_latencies, 95.0),
        compacting_query_p95_ms: geodabs_serve::percentile(&compacting_latencies, 95.0),
        compacted_watermark,
        consistent,
    })
}

/// One measured shard-server count of the distributed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedPoint {
    /// Shard servers behind the frontend.
    pub shard_servers: usize,
    /// The closed-loop load point measured against the frontend.
    pub load: LoadRun,
}

/// Everything one distributed-serving run measured: client-observed
/// QPS and latency through a scatter/gather frontend, at several
/// shard-server counts, every response verified bit-identical against
/// the monolithic index.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedReport {
    /// The workload scenario supplying corpus and queries.
    pub scenario: Scenario,
    /// Logical shards the router slices the Z-curve into.
    pub num_shards: u64,
    /// Trajectories in the corpus.
    pub trajectories: usize,
    /// Result cap used for all queries.
    pub query_limit: usize,
    /// Concurrent connections each point drove.
    pub connections: usize,
    /// One load point per measured shard-server count.
    pub points: Vec<DistributedPoint>,
}

impl DistributedReport {
    /// The canonical report file name: `BENCH_distributed.json`.
    pub fn file_name(&self) -> String {
        "BENCH_distributed.json".to_string()
    }

    /// Whether every response at every shard count matched the
    /// monolithic ranking bit for bit.
    pub fn consistent(&self) -> bool {
        self.points.iter().all(|p| p.load.mismatches == 0)
    }

    /// Serializes the report. Shares `schema_version` with the workload
    /// report; the `kind` field marks the different shape, so the ingest
    /// perf gate rejects a distributed report as a baseline.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Num(SCHEMA_VERSION as f64)),
            ("kind", Json::Str("distributed".into())),
            ("scenario", Json::Str(self.scenario.name.clone())),
            ("preset", Json::Str(self.scenario.preset.name().into())),
            ("seed", Json::Num(self.scenario.seed as f64)),
            ("num_shards", Json::Num(self.num_shards as f64)),
            (
                "corpus",
                Json::obj(vec![("trajectories", Json::Num(self.trajectories as f64))]),
            ),
            (
                "query",
                Json::obj(vec![
                    ("count", Json::Num(self.scenario.queries as f64)),
                    ("limit", Json::Num(self.query_limit as f64)),
                    ("connections", Json::Num(self.connections as f64)),
                    ("verified", Json::Bool(true)),
                    ("consistent", Json::Bool(self.consistent())),
                ]),
            ),
            (
                "shard_servers",
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("shard_servers", Json::Num(p.shard_servers as f64)),
                                ("requests", Json::Num(p.load.requests as f64)),
                                ("mismatches", Json::Num(p.load.mismatches as f64)),
                                ("seconds", Json::Num(round6(p.load.seconds))),
                                ("qps", Json::Num(round3(p.load.qps))),
                                (
                                    "latency_ms",
                                    Json::obj(vec![
                                        ("p50", Json::Num(round6(p.load.p50_ms))),
                                        ("p95", Json::Num(round6(p.load.p95_ms))),
                                        ("p99", Json::Num(round6(p.load.p99_ms))),
                                    ]),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The logical shard count of the distributed scenario — the paper's
/// fine-grained 10 000-shard configuration (Figure 16).
pub const DISTRIBUTED_NUM_SHARDS: u64 = 10_000;

/// Runs the distributed-serving scenario end to end on loopback: for
/// each entry of `shard_server_counts`, boot that many in-process shard
/// servers (each hosting one [`ShardNode`] slice of the corpus) plus a
/// scatter/gather [`Frontend`], then drive `connections` closed-loop
/// connections of scenario queries against the frontend — every
/// response verified **bit-identical** against the monolithic geodab
/// index.
///
/// # Errors
///
/// Bind/connection failures, a cluster-shape error, or any response
/// mismatch surfacing as a nonzero mismatch count in the report.
pub fn run_distributed(
    scenario: &Scenario,
    shard_server_counts: &[usize],
    connections: usize,
    seconds_per_point: f64,
) -> Result<DistributedReport, String> {
    assert!(
        !shard_server_counts.is_empty(),
        "need at least one shard-server count"
    );
    let dataset = generate(scenario);
    let items: Vec<(TrajId, &Trajectory)> = dataset
        .records()
        .iter()
        .map(|r| (r.id, &r.trajectory))
        .collect();
    let config = GeodabConfig::default();

    // The monolithic reference: the exact rankings every distributed
    // answer must reproduce bit for bit.
    let mut monolith = GeodabIndex::new(config);
    monolith.insert_batch(items.clone());
    let query_limit = VERIFY_LIMIT;
    let options = SearchOptions::default().limit(query_limit);
    let queries: Vec<Trajectory> = dataset
        .queries()
        .iter()
        .map(|q| q.trajectory.clone())
        .collect();
    let expected: Vec<Vec<SearchResult>> = queries
        .iter()
        .map(|q| monolith.search(q, &options))
        .collect();

    // Connections multiplex over a core-sized worker pool on both the
    // shard servers and the frontend; the driven connection count no
    // longer dictates pool size.
    let pool = geodabs_index::batch::default_threads();
    let duration = Duration::from_secs_f64(seconds_per_point.max(0.05));
    let mut points = Vec::with_capacity(shard_server_counts.len());
    for &servers in shard_server_counts {
        let mut cluster = ClusterIndex::new(config, DISTRIBUTED_NUM_SHARDS, servers)
            .map_err(|e| e.to_string())?;
        cluster.insert_batch(items.clone());
        let mut running = Vec::with_capacity(servers);
        let mut addrs = Vec::with_capacity(servers);
        for node in 0..servers {
            let slice = cluster.shard_node(node).expect("node id in range");
            let server = Server::bind("127.0.0.1:0", slice, mux_config(pool)?)
                .map_err(|e| format!("binding shard server {node}: {e}"))?;
            addrs.push(server.local_addr().to_string());
            running.push(server.spawn());
        }
        let router = ShardRouter::new(config.prefix_bits(), DISTRIBUTED_NUM_SHARDS, servers)
            .map_err(|e| e.to_string())?;
        let frontend = Frontend::bind(
            "127.0.0.1:0",
            Fingerprinter::new(config),
            router,
            addrs,
            FrontendConfig::builder()
                .mux_workers(pool)
                .build()
                .map_err(|e| e.to_string())?,
        )
        .map_err(|e| format!("binding frontend: {e}"))?
        .spawn();
        let load = LoadClient::new(frontend.addr().to_string(), queries.clone(), options)
            .expect_results(expected.clone());
        let point = load
            .run(connections, duration)
            .map_err(|e| format!("load run at {servers} shard server(s): {e}"))?;
        frontend
            .shutdown()
            .map_err(|e| format!("frontend shutdown: {e}"))?;
        for server in running {
            server
                .shutdown()
                .map_err(|e| format!("shard server shutdown: {e}"))?;
        }
        points.push(DistributedPoint {
            shard_servers: servers,
            load: point,
        });
    }

    Ok(DistributedReport {
        scenario: scenario.clone(),
        num_shards: DISTRIBUTED_NUM_SHARDS,
        trajectories: dataset.records().len(),
        query_limit,
        connections,
        points,
    })
}

/// One measured in-process shard count of the multicore scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticorePoint {
    /// In-process shard cells the server hosted.
    pub shards: usize,
    /// The closed-loop load point with no writes in flight, every
    /// response verified bit-identical against the monolithic index.
    pub quiet: LoadRun,
    /// The closed-loop load point measured while a bulk ingest ran
    /// concurrently (responses are unverifiable mid-mutation, so this
    /// point reports latency only — the read-under-ingest figure the
    /// copy-on-write read path exists for).
    pub under_ingest: LoadRun,
    /// Trajectories the concurrent ingest pushed during the
    /// under-ingest point.
    pub ingested: u64,
}

/// Everything one multicore-serving run measured: client-observed QPS
/// and latency against a single server at several in-process shard
/// counts, quiet and under concurrent ingest.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticoreReport {
    /// The workload scenario supplying corpus and queries.
    pub scenario: Scenario,
    /// Trajectories in the corpus.
    pub trajectories: usize,
    /// Result cap used for all queries.
    pub query_limit: usize,
    /// Concurrent connections each point drove.
    pub connections: usize,
    /// One point per measured shard count.
    pub points: Vec<MulticorePoint>,
}

impl MulticoreReport {
    /// The canonical report file name: `BENCH_multicore.json`.
    pub fn file_name(&self) -> String {
        "BENCH_multicore.json".to_string()
    }

    /// Whether every verified (quiet) response matched the monolithic
    /// ranking bit for bit and no connection died under ingest.
    pub fn consistent(&self) -> bool {
        self.points
            .iter()
            .all(|p| p.quiet.mismatches == 0 && p.under_ingest.mismatches == 0)
    }

    /// Serializes the report. Shares `schema_version` with the workload
    /// report; the `kind` field marks the different shape, so the ingest
    /// perf gate rejects a multicore report as a baseline.
    pub fn to_json(&self) -> Json {
        let load_json = |p: &LoadRun| {
            Json::obj(vec![
                ("requests", Json::Num(p.requests as f64)),
                ("mismatches", Json::Num(p.mismatches as f64)),
                ("seconds", Json::Num(round6(p.seconds))),
                ("qps", Json::Num(round3(p.qps))),
                (
                    "latency_ms",
                    Json::obj(vec![
                        ("p50", Json::Num(round6(p.p50_ms))),
                        ("p95", Json::Num(round6(p.p95_ms))),
                        ("p99", Json::Num(round6(p.p99_ms))),
                    ]),
                ),
            ])
        };
        Json::obj(vec![
            ("schema_version", Json::Num(SCHEMA_VERSION as f64)),
            ("kind", Json::Str("multicore".into())),
            ("scenario", Json::Str(self.scenario.name.clone())),
            ("preset", Json::Str(self.scenario.preset.name().into())),
            ("seed", Json::Num(self.scenario.seed as f64)),
            (
                "corpus",
                Json::obj(vec![("trajectories", Json::Num(self.trajectories as f64))]),
            ),
            (
                "query",
                Json::obj(vec![
                    ("count", Json::Num(self.scenario.queries as f64)),
                    ("limit", Json::Num(self.query_limit as f64)),
                    ("connections", Json::Num(self.connections as f64)),
                    ("verified", Json::Bool(true)),
                    ("consistent", Json::Bool(self.consistent())),
                ]),
            ),
            (
                "shards",
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("shards", Json::Num(p.shards as f64)),
                                ("quiet", load_json(&p.quiet)),
                                ("under_ingest", load_json(&p.under_ingest)),
                                ("ingested", Json::Num(p.ingested as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Id offset for the trajectories the under-ingest phase pushes, far
/// above any scenario corpus id so the writes never collide with the
/// served corpus.
const MULTICORE_INGEST_ID_BASE: u32 = 1 << 30;

/// Runs the multicore-serving scenario end to end on loopback: for
/// each entry of `shard_counts`, serve the scenario corpus from one
/// server hosting that many in-process shard cells (a count of `1`
/// keeps the monolithic lock-based host — the regression baseline) and
/// drive `connections` closed-loop connections twice — once quiet, with
/// every response verified **bit-identical** against the in-process
/// ranking, and once with a concurrent bulk ingest in flight, the
/// read-latency-under-writes figure the copy-on-write read path exists
/// for.
///
/// # Errors
///
/// Bind/connection failures, a refused shard conversion, or any
/// response mismatch surfacing as a nonzero mismatch count in the
/// report.
pub fn run_multicore(
    scenario: &Scenario,
    shard_counts: &[usize],
    connections: usize,
    seconds_per_point: f64,
) -> Result<MulticoreReport, String> {
    assert!(!shard_counts.is_empty(), "need at least one shard count");
    let dataset = generate(scenario);
    let items: Vec<(TrajId, &Trajectory)> = dataset
        .records()
        .iter()
        .map(|r| (r.id, &r.trajectory))
        .collect();

    let mut monolith = GeodabIndex::new(GeodabConfig::default());
    monolith.insert_batch(items.clone());
    let query_limit = VERIFY_LIMIT;
    let options = SearchOptions::default().limit(query_limit);
    let queries: Vec<Trajectory> = dataset
        .queries()
        .iter()
        .map(|q| q.trajectory.clone())
        .collect();
    let expected: Vec<Vec<SearchResult>> = queries
        .iter()
        .map(|q| monolith.search(q, &options))
        .collect();

    let workers = geodabs_index::batch::default_threads();
    let duration = Duration::from_secs_f64(seconds_per_point.max(0.05));
    let mut points = Vec::with_capacity(shard_counts.len());
    for &shards in shard_counts {
        let mut index = GeodabIndex::new(GeodabConfig::default());
        index.insert_batch(items.clone());
        let config = ServerConfig::builder()
            .shards(shards)
            .mux_workers(workers)
            .build()
            .map_err(|e| e.to_string())?;
        let running = Server::bind("127.0.0.1:0", index, config)
            .map_err(|e| format!("binding loopback at {shards} shard(s): {e}"))?
            .spawn();
        let addr = running.addr().to_string();

        let quiet = LoadClient::new(addr.clone(), queries.clone(), options)
            .expect_results(expected.clone())
            .run(connections, duration)
            .map_err(|e| format!("quiet load run at {shards} shard(s): {e}"))?;

        // Under-ingest point: one writer streams fresh trajectories
        // while the readers run. Rankings legitimately shift as the
        // corpus grows, so this point measures latency, not identity.
        let stop = std::sync::atomic::AtomicBool::new(false);
        let (under, ingested) = std::thread::scope(|scope| {
            let writer = scope.spawn(|| -> Result<u64, String> {
                let mut client = Client::connect(addr.as_str())
                    .map_err(|e| format!("ingest client connect: {e}"))?;
                let records = dataset.records();
                let mut pushed = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let record = &records[(pushed as usize) % records.len()];
                    client
                        .insert(
                            TrajId::new(MULTICORE_INGEST_ID_BASE + pushed as u32),
                            &record.trajectory,
                        )
                        .map_err(|e| format!("concurrent ingest insert: {e}"))?;
                    pushed += 1;
                }
                Ok(pushed)
            });
            let under = LoadClient::new(addr.clone(), queries.clone(), options)
                .run(connections, duration)
                .map_err(|e| format!("under-ingest load run at {shards} shard(s): {e}"));
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            match writer.join() {
                Ok(Ok(pushed)) => (under, pushed),
                Ok(Err(e)) => (under.and(Err(e)), 0),
                Err(_) => (under.and(Err("ingest thread panicked".to_string())), 0),
            }
        });
        let under_ingest = under?;

        running
            .shutdown()
            .map_err(|e| format!("server shutdown at {shards} shard(s): {e}"))?;
        points.push(MulticorePoint {
            shards,
            quiet,
            under_ingest,
            ingested,
        });
    }

    Ok(MulticoreReport {
        scenario: scenario.clone(),
        trajectories: dataset.records().len(),
        query_limit,
        connections,
        points,
    })
}

/// Zipf exponent of the skewed scenario's query distribution. At 1.2
/// over 40 distinct queries the hottest key takes roughly a third of
/// the stream — the hot-key shape measured in production key-value and
/// query traces.
pub const SKEWED_ZIPF_EXPONENT: f64 = 1.2;

/// Zipf-draws per distinct query when expanding the request stream.
const SKEWED_STREAM_FACTOR: usize = 8;

/// SplitMix64 step — the tiny deterministic PRNG behind the Zipf draws
/// (the vendored `rand` exposes no distributions, so the inverse-CDF
/// sampling is done by hand).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws `count` Zipf(`exponent`)-distributed ranks in `0..n` by
/// inverse-CDF over the precomputed cumulative weights. Deterministic
/// given the seed; rank 0 is the hottest key.
fn zipf_ranks(n: usize, exponent: f64, count: usize, seed: u64) -> Vec<usize> {
    assert!(n > 0, "zipf over an empty domain");
    let mut cumulative = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for rank in 0..n {
        total += 1.0 / ((rank + 1) as f64).powf(exponent);
        cumulative.push(total);
    }
    let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
    (0..count)
        .map(|_| {
            // 53 random bits → uniform f64 in [0, 1).
            let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            let target = u * total;
            cumulative.partition_point(|&c| c <= target).min(n - 1)
        })
        .collect()
}

/// Everything one skewed-workload run measured: client-observed
/// throughput and latency per connection count when the request stream
/// follows a Zipf hot-key distribution over the scenario's queries.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewedReport {
    /// The workload scenario supplying corpus and queries.
    pub scenario: Scenario,
    /// The served backend's name.
    pub backend: String,
    /// Trajectories held by the server.
    pub trajectories: usize,
    /// Result cap used for all queries.
    pub query_limit: usize,
    /// Whether responses were verified against in-process rankings.
    pub verified: bool,
    /// The Zipf exponent shaping the stream.
    pub zipf_exponent: f64,
    /// Distinct queries behind the stream.
    pub distinct_queries: usize,
    /// Requests in the expanded stream the clients cycle over.
    pub stream_length: usize,
    /// Fraction of the stream taken by the single hottest query.
    pub hot_query_share: f64,
    /// One load point per measured connection count.
    pub points: Vec<LoadRun>,
}

impl SkewedReport {
    /// The canonical report file name: `BENCH_skewed.json`.
    pub fn file_name(&self) -> String {
        "BENCH_skewed.json".to_string()
    }

    /// Whether every response matched and every connection survived.
    pub fn consistent(&self) -> bool {
        self.points.iter().all(|p| p.mismatches == 0)
    }

    /// Serializes the report. The `kind` field marks the shape, so the
    /// ingest perf gate rejects a skewed report as a baseline.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Num(SCHEMA_VERSION as f64)),
            ("kind", Json::Str("skewed".into())),
            ("scenario", Json::Str(self.scenario.name.clone())),
            ("preset", Json::Str(self.scenario.preset.name().into())),
            ("seed", Json::Num(self.scenario.seed as f64)),
            ("backend", Json::Str(self.backend.clone())),
            (
                "corpus",
                Json::obj(vec![("trajectories", Json::Num(self.trajectories as f64))]),
            ),
            (
                "skew",
                Json::obj(vec![
                    ("zipf_exponent", Json::Num(self.zipf_exponent)),
                    ("distinct_queries", Json::Num(self.distinct_queries as f64)),
                    ("stream_length", Json::Num(self.stream_length as f64)),
                    ("hot_query_share", Json::Num(round6(self.hot_query_share))),
                ]),
            ),
            (
                "query",
                Json::obj(vec![
                    ("limit", Json::Num(self.query_limit as f64)),
                    ("verified", Json::Bool(self.verified)),
                    ("consistent", Json::Bool(self.consistent())),
                ]),
            ),
            (
                "connections",
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("connections", Json::Num(p.connections as f64)),
                                ("requests", Json::Num(p.requests as f64)),
                                ("mismatches", Json::Num(p.mismatches as f64)),
                                ("seconds", Json::Num(round6(p.seconds))),
                                ("qps", Json::Num(round3(p.qps))),
                                (
                                    "latency_ms",
                                    Json::obj(vec![
                                        ("p50", Json::Num(round6(p.p50_ms))),
                                        ("p95", Json::Num(round6(p.p95_ms))),
                                        ("p99", Json::Num(round6(p.p99_ms))),
                                    ]),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Runs the skewed-workload scenario end to end on loopback: ingest the
/// corpus, serve it, then drive the connection ladder with a request
/// stream whose query frequencies follow Zipf([`SKEWED_ZIPF_EXPONENT`])
/// over the scenario's queries — hammering the hot posting lists the way
/// real query logs do, every response verified bit-identical against the
/// in-process ranking. The clients cycle over a pre-expanded stream of
/// 8 × queries Zipf draws, so stream frequency
/// equals request frequency.
///
/// # Errors
///
/// Bind/connection failures, or any response mismatch.
pub fn run_skewed(
    scenario: &Scenario,
    max_connections: usize,
    seconds_per_point: f64,
) -> Result<SkewedReport, String> {
    let dataset = generate(scenario);
    let items: Vec<(TrajId, &Trajectory)> = dataset
        .records()
        .iter()
        .map(|r| (r.id, &r.trajectory))
        .collect();
    let mut index = AnyIndex::empty("geodab", 0, 0)?;
    index.insert_batch(items);
    let trajectories = TrajectoryIndex::len(&index);
    let backend = index.backend_name().to_string();

    let query_limit = VERIFY_LIMIT;
    let options = SearchOptions::default().limit(query_limit);
    let distinct: Vec<Trajectory> = dataset
        .queries()
        .iter()
        .map(|q| q.trajectory.clone())
        .collect();
    if distinct.is_empty() {
        return Err("the skewed scenario needs at least one query".to_string());
    }
    let answers: Vec<Vec<SearchResult>> = distinct
        .iter()
        .map(|q| TrajectoryIndex::search(&index, q, &options))
        .collect();

    // Expand the Zipf draws into the stream the clients round-robin
    // over; matching expected answers keep per-response verification.
    let ranks = zipf_ranks(
        distinct.len(),
        SKEWED_ZIPF_EXPONENT,
        distinct.len() * SKEWED_STREAM_FACTOR,
        scenario.seed,
    );
    let stream: Vec<Trajectory> = ranks.iter().map(|&r| distinct[r].clone()).collect();
    let expected: Vec<Vec<SearchResult>> = ranks.iter().map(|&r| answers[r].clone()).collect();
    let hottest = ranks.iter().filter(|&&r| r == 0).count();
    let hot_query_share = hottest as f64 / ranks.len() as f64;

    let config = ServerConfig::builder()
        .mux_workers(geodabs_index::batch::default_threads())
        .build()
        .map_err(|e| e.to_string())?;
    let server =
        Server::bind("127.0.0.1:0", index, config).map_err(|e| format!("binding loopback: {e}"))?;
    let running = server.spawn();
    let ladder = thread_ladder(max_connections);
    let points = run_load_ladder(
        &running.addr().to_string(),
        stream,
        options,
        Some(expected),
        &ladder,
        seconds_per_point,
    );
    running
        .shutdown()
        .map_err(|e| format!("server shutdown: {e}"))?;
    Ok(SkewedReport {
        scenario: scenario.clone(),
        backend,
        trajectories,
        query_limit,
        verified: true,
        zipf_exponent: SKEWED_ZIPF_EXPONENT,
        distinct_queries: distinct.len(),
        stream_length: ranks.len(),
        hot_query_share,
        points: points?,
    })
}

/// The CI perf gate's verdict: current vs baseline batch-ingest
/// throughput, with the allowed regression applied.
#[derive(Debug, Clone, PartialEq)]
pub struct GateVerdict {
    /// Best ingest throughput of the fresh run, trajectories/second.
    pub current: f64,
    /// Best ingest throughput recorded in the baseline file.
    pub baseline: f64,
    /// The floor the current run must clear:
    /// `baseline × (1 − max_regress_pct/100)`.
    pub floor: f64,
    /// p95 query latency of the fresh run, milliseconds.
    pub latency_p95: f64,
    /// Baseline p95 latency, when the baseline records one (older or
    /// hand-written baselines may not; the latency check is skipped
    /// then).
    pub latency_baseline_p95: Option<f64>,
    /// The ceiling the current p95 must stay under:
    /// `baseline_p95 × (1 + max_regress_pct/100)`.
    pub latency_ceiling: Option<f64>,
    /// Whether the gate passes: throughput at or above the floor **and**
    /// — when the baseline records latency — p95 at or under the
    /// ceiling.
    pub pass: bool,
}

/// The fields of a baseline `BENCH_*.json` the gate consumes.
struct BaselineData {
    scenario: String,
    seed: f64,
    best_ingest: f64,
    latency_p95: Option<f64>,
}

fn parse_baseline(baseline_text: &str) -> Result<BaselineData, String> {
    let baseline = Json::parse(baseline_text).map_err(|e| format!("baseline: {e}"))?;
    let version = baseline
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("baseline: missing schema_version")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!(
            "baseline schema version {version} != supported {SCHEMA_VERSION}; re-baseline"
        ));
    }
    let scenario = baseline
        .get("scenario")
        .and_then(Json::as_str)
        .ok_or("baseline: missing scenario")?;
    let seed = baseline
        .get("seed")
        .and_then(Json::as_f64)
        .ok_or("baseline: missing seed")?;
    let runs = baseline
        .get("ingest")
        .and_then(|i| i.get("runs"))
        .and_then(Json::as_array)
        .ok_or("baseline: missing ingest.runs")?;
    let best_ingest = runs
        .iter()
        .filter_map(|r| r.get("traj_per_sec").and_then(Json::as_f64))
        .fold(f64::NAN, f64::max);
    if !best_ingest.is_finite() || best_ingest <= 0.0 {
        return Err("baseline: no positive ingest.runs[].traj_per_sec".into());
    }
    // Latency is optional so minimal or pre-p95 baselines stay usable;
    // when present it must be a sane positive number.
    let latency_p95 = baseline
        .get("query")
        .and_then(|q| q.get("latency_ms"))
        .and_then(|l| l.get("p95"))
        .and_then(Json::as_f64);
    if let Some(p95) = latency_p95 {
        if !p95.is_finite() || p95 <= 0.0 {
            return Err("baseline: query.latency_ms.p95 must be positive".into());
        }
    }
    Ok(BaselineData {
        scenario: scenario.to_string(),
        seed,
        best_ingest,
        latency_p95,
    })
}

fn validate_gate(
    scenario: &Scenario,
    data: &BaselineData,
    max_regress_pct: f64,
) -> Result<(), String> {
    if data.scenario != scenario.name {
        return Err(format!(
            "baseline is for scenario {:?}, this run is {:?}",
            data.scenario, scenario.name
        ));
    }
    // A different seed generates a different corpus; its throughput is
    // not comparable, so the gate verdict would be meaningless.
    if data.seed != scenario.seed as f64 {
        return Err(format!(
            "baseline was measured with seed {}, this run used seed {} — \
             not the same workload",
            data.seed, scenario.seed
        ));
    }
    if !(0.0..100.0).contains(&max_regress_pct) {
        return Err(format!(
            "max regression must be in 0..100 percent (got {max_regress_pct}); \
             100% or more would make the gate vacuous"
        ));
    }
    Ok(())
}

/// Validates gate inputs **before** a (possibly minutes-long) scenario
/// run: the baseline must parse, match the scenario's name and seed, and
/// the allowed regression must be a sane percentage. Input errors fail
/// in milliseconds instead of after the measurement.
///
/// # Errors
///
/// Returns the same messages [`check_gate`] would for bad inputs.
pub fn preflight_gate(
    scenario: &Scenario,
    baseline_text: &str,
    max_regress_pct: f64,
) -> Result<(), String> {
    validate_gate(scenario, &parse_baseline(baseline_text)?, max_regress_pct)
}

/// Compares a fresh report against a checked-in baseline `BENCH_*.json`
/// (any report emitted by this harness is a valid baseline). The gate
/// fails when the best batch-ingest throughput drops more than
/// `max_regress_pct` percent below the baseline's, or — when the
/// baseline records query latency — when the fresh p95 rises more than
/// `max_regress_pct` percent above the baseline's.
///
/// # Errors
///
/// Returns a message when the baseline is unparsable, has a different
/// schema version, names a different scenario or seed, or the allowed
/// regression is outside `0..100` percent.
pub fn check_gate(
    report: &WorkloadReport,
    baseline_text: &str,
    max_regress_pct: f64,
) -> Result<GateVerdict, String> {
    let data = parse_baseline(baseline_text)?;
    validate_gate(&report.scenario, &data, max_regress_pct)?;
    let current = report.best_ingest_throughput();
    let floor = data.best_ingest * (1.0 - max_regress_pct / 100.0);
    let latency_p95 = report.latency.p95;
    let latency_ceiling = data
        .latency_p95
        .map(|p95| p95 * (1.0 + max_regress_pct / 100.0));
    let latency_pass = latency_ceiling.is_none_or(|ceiling| latency_p95 <= ceiling);
    Ok(GateVerdict {
        current,
        baseline: data.best_ingest,
        floor,
        latency_p95,
        latency_baseline_p95: data.latency_p95,
        latency_ceiling,
        pass: current >= floor && latency_pass,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_cover_the_presets_and_sizes() {
        let scenarios = catalog();
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let mut deduped = names.clone();
        deduped.dedup();
        assert_eq!(names, deduped, "duplicate scenario names");
        for required in [
            "smoke",
            "micro",
            "dense-urban-1k",
            "dense-urban-10k",
            "dense-urban-100k",
            "sparse-rural-1k",
            "road-matched-1k",
            "mixed-length-1k",
        ] {
            assert!(find(required).is_some(), "missing scenario {required}");
        }
    }

    #[test]
    fn presets_hit_their_corpus_targets() {
        for preset in [
            Preset::DenseUrban,
            Preset::SparseRural,
            Preset::RoadMatched,
            Preset::MixedLength,
        ] {
            for corpus in [1_000usize, 10_000] {
                let cfg = preset.dataset(corpus, 10);
                let produced = cfg.routes * cfg.per_direction * 2;
                assert_eq!(produced, corpus, "{} at {corpus}", preset.name());
            }
        }
    }

    #[test]
    fn thread_ladder_caps_and_includes_max() {
        assert_eq!(thread_ladder(1), vec![1]);
        assert_eq!(thread_ladder(2), vec![1, 2]);
        assert_eq!(thread_ladder(4), vec![1, 2, 4]);
        assert_eq!(thread_ladder(8), vec![1, 2, 4, 8]);
        assert_eq!(thread_ladder(6), vec![1, 2, 4, 6]);
        assert_eq!(thread_ladder(0), vec![1], "zero clamps to one");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sample: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sample, 50.0), 50.0);
        assert_eq!(percentile(&sample, 95.0), 95.0);
        assert_eq!(percentile(&sample, 99.0), 99.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn micro_scenario_runs_and_serializes_a_valid_report() {
        let scenario = find("micro").expect("catalog has micro");
        let report = run_scenario(&scenario, &[1, 2]);
        assert_eq!(report.trajectories, 40);
        assert!(report.ingest_consistent);
        assert_eq!(report.ingest.len(), 2);
        assert!(report.best_ingest_throughput() > 0.0);
        assert!(report.latency.p50 <= report.latency.p95);
        assert!(report.latency.p95 <= report.latency.p99);
        assert!(report.latency.p99 <= report.latency.max);
        // The emitted JSON parses back and carries the schema markers the
        // gate checks.
        let text = report.to_json().pretty();
        let parsed = Json::parse(&text).expect("report is valid JSON");
        assert_eq!(
            parsed.get("schema_version").and_then(Json::as_f64),
            Some(SCHEMA_VERSION as f64)
        );
        assert_eq!(parsed.get("scenario").and_then(Json::as_str), Some("micro"));
        assert_eq!(report.file_name(), "BENCH_micro.json");
    }

    #[test]
    fn cold_start_scenario_is_in_the_catalog() {
        let scenario = find(COLD_START).expect("catalog has cold-start");
        assert_eq!(scenario.preset, Preset::DenseUrban);
        assert_eq!(scenario.corpus, 10_000);
    }

    #[test]
    fn cold_start_runs_and_serializes_a_valid_report() {
        // A scaled-down twin of the real scenario so the test suite stays
        // fast; the CLI runs the 10k catalog entry.
        let scenario = Scenario {
            name: "cold-start".into(),
            preset: Preset::DenseUrban,
            corpus: 60,
            queries: 6,
            seed: 7,
        };
        let report = run_cold_start(&scenario, 2);
        assert_eq!(report.trajectories, 60);
        assert!(report.consistent, "restored index must answer identically");
        assert!(report.snapshot_bytes > 0);
        assert!(report.save_seconds >= 0.0 && report.load_seconds >= 0.0);
        assert!(report.restore_speedup > 0.0);
        assert!(report.save_mb_per_s() > 0.0);
        assert!(report.load_mb_per_s() > 0.0);
        let text = report.to_json().pretty();
        let parsed = Json::parse(&text).expect("report is valid JSON");
        assert_eq!(
            parsed.get("kind").and_then(Json::as_str),
            Some("cold-start")
        );
        assert_eq!(
            parsed
                .get("snapshot")
                .and_then(|s| s.get("consistent"))
                .and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(report.file_name(), "BENCH_cold-start.json");
        // A cold-start report is not a valid ingest-gate baseline.
        let scenario = find("micro").unwrap();
        let workload_report = run_scenario(&scenario, &[1]);
        assert!(check_gate(&workload_report, &text, 30.0).is_err());
    }

    #[test]
    fn serve_scenario_is_in_the_catalog() {
        let scenario = find(SERVE).expect("catalog has serve");
        assert_eq!(scenario.preset, Preset::DenseUrban);
        assert_eq!(scenario.corpus, 2_000);
    }

    #[test]
    fn any_index_roundtrips_snapshots_and_verifies_against_rebuild() {
        let scenario = find("micro").expect("catalog has micro");
        let dataset = generate(&scenario);
        let items: Vec<(TrajId, &Trajectory)> = dataset
            .records()
            .iter()
            .map(|r| (r.id, &r.trajectory))
            .collect();
        for backend in ["geodab", "geohash", "cluster"] {
            let mut index = AnyIndex::empty(backend, 1_000, 3).expect("known backend");
            index.insert_batch(items.clone());
            assert_eq!(index.backend_name(), backend);
            assert_eq!(TrajectoryIndex::len(&index), 40);
            assert_eq!(TrajectoryIndex::ids(&index).count(), 40);

            // Snapshot → AnyIndex round trip picks the right backend…
            let bytes = match &index {
                AnyIndex::Geodab(i) => i.to_snapshot(),
                AnyIndex::Geohash(i) => i.to_snapshot(),
                AnyIndex::Cluster(i) => i.to_snapshot(),
                AnyIndex::Node(i) => i.to_snapshot(),
            };
            let restored = AnyIndex::from_snapshot_bytes(&bytes).expect("roundtrip");
            assert_eq!(restored.backend_name(), backend);
            assert_eq!(restored.term_count(), index.term_count());

            // …and the shared verification replay passes on it.
            let checked = verify_against_rebuild(&restored, &scenario).expect("verify");
            assert_eq!(checked, dataset.queries().len());
        }
        assert!(AnyIndex::empty("warp", 1, 1).is_err());
        assert!(AnyIndex::from_snapshot_bytes(b"garbage").is_err());
    }

    #[test]
    fn verify_against_rebuild_detects_divergence() {
        let scenario = find("micro").expect("catalog has micro");
        let dataset = generate(&scenario);
        let mut index = AnyIndex::empty("geodab", 0, 0).unwrap();
        let items: Vec<(TrajId, &Trajectory)> = dataset
            .records()
            .iter()
            .map(|r| (r.id, &r.trajectory))
            .collect();
        index.insert_batch(items);
        // Drop one trajectory: the rebuild must notice the shape drift.
        let some_id = TrajectoryIndex::ids(&index).next().unwrap();
        TrajectoryIndex::remove(&mut index, some_id);
        let err = verify_against_rebuild(&index, &scenario).unwrap_err();
        assert!(err.contains("shape differs"), "{err}");
    }

    #[test]
    fn serve_runner_reports_verified_consistent_traffic() {
        // A scaled-down twin of the catalog scenario so the test suite
        // stays fast; the CLI runs the 2k catalog entry.
        let scenario = Scenario {
            name: SERVE.into(),
            preset: Preset::DenseUrban,
            corpus: 40,
            queries: 4,
            seed: 7,
        };
        let report = run_serve(&scenario, 2, 0.1).expect("serve run");
        assert_eq!(report.backend, "geodab");
        assert_eq!(report.trajectories, 40);
        assert!(report.verified);
        assert!(report.consistent(), "{report:?}");
        assert_eq!(report.points.len(), thread_ladder(2).len());
        for point in &report.points {
            assert!(point.requests > 0, "{point:?}");
            assert!(point.qps > 0.0);
            assert!(point.p50_ms <= point.p95_ms && point.p95_ms <= point.p99_ms);
        }
        let text = report.to_json().pretty();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("serve"));
        assert_eq!(
            parsed
                .get("query")
                .and_then(|q| q.get("consistent"))
                .and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(report.file_name(), "BENCH_serve.json");
        // A serve report is not a valid ingest-gate baseline.
        let micro = find("micro").unwrap();
        let workload_report = run_scenario(&micro, &[1]);
        assert!(check_gate(&workload_report, &text, 30.0).is_err());
    }

    #[test]
    fn distributed_scenario_is_in_the_catalog() {
        let scenario = find(DISTRIBUTED).expect("catalog has distributed");
        assert_eq!(scenario.preset, Preset::DenseUrban);
        assert_eq!(scenario.corpus, 2_000);
    }

    #[test]
    fn distributed_runner_matches_the_monolith_at_every_shard_count() {
        // A scaled-down twin of the catalog scenario so the test suite
        // stays fast; the CLI runs the 2k catalog entry.
        let scenario = Scenario {
            name: DISTRIBUTED.into(),
            preset: Preset::DenseUrban,
            corpus: 40,
            queries: 4,
            seed: 7,
        };
        let report = run_distributed(&scenario, &[1, 2], 2, 0.1).expect("distributed run");
        assert_eq!(report.trajectories, 40);
        assert_eq!(report.num_shards, DISTRIBUTED_NUM_SHARDS);
        assert!(report.consistent(), "{report:?}");
        assert_eq!(report.points.len(), 2);
        for point in &report.points {
            assert!(point.load.requests > 0, "{point:?}");
            assert_eq!(point.load.mismatches, 0, "{point:?}");
        }
        let text = report.to_json().pretty();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(
            parsed.get("kind").and_then(Json::as_str),
            Some("distributed")
        );
        assert_eq!(
            parsed
                .get("query")
                .and_then(|q| q.get("consistent"))
                .and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(report.file_name(), "BENCH_distributed.json");
        // A distributed report is not a valid ingest-gate baseline.
        assert!(preflight_gate(&scenario, &text, 30.0).is_err());
    }

    #[test]
    fn multicore_runner_stays_consistent_quiet_and_under_ingest() {
        // A scaled-down twin of the catalog scenario so the test suite
        // stays fast; the CLI runs the 2k catalog entry.
        let scenario = Scenario {
            name: MULTICORE.into(),
            preset: Preset::DenseUrban,
            corpus: 40,
            queries: 4,
            seed: 7,
        };
        let report = run_multicore(&scenario, &[1, 2], 2, 0.1).expect("multicore run");
        assert_eq!(report.trajectories, 40);
        assert!(report.consistent(), "{report:?}");
        assert_eq!(report.points.len(), 2);
        assert_eq!(report.points[0].shards, 1);
        assert_eq!(report.points[1].shards, 2);
        for point in &report.points {
            assert!(point.quiet.requests > 0, "{point:?}");
            assert!(point.under_ingest.requests > 0, "{point:?}");
            assert_eq!(point.quiet.mismatches, 0, "{point:?}");
            assert_eq!(point.under_ingest.mismatches, 0, "{point:?}");
            assert!(point.ingested > 0, "the writer made progress: {point:?}");
        }
        let text = report.to_json().pretty();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("multicore"));
        assert_eq!(report.file_name(), "BENCH_multicore.json");
        // A multicore report is not a valid ingest-gate baseline.
        assert!(preflight_gate(&scenario, &text, 30.0).is_err());
    }

    #[test]
    fn multicore_scenario_is_in_the_catalog() {
        let scenario = find(MULTICORE).expect("catalog has multicore");
        assert_eq!(scenario.preset, Preset::DenseUrban);
        assert_eq!(scenario.corpus, 2_000);
    }

    #[test]
    fn zipf_ranks_are_deterministic_and_head_heavy() {
        let ranks = zipf_ranks(40, SKEWED_ZIPF_EXPONENT, 320, 7);
        assert_eq!(ranks, zipf_ranks(40, SKEWED_ZIPF_EXPONENT, 320, 7));
        assert_ne!(ranks, zipf_ranks(40, SKEWED_ZIPF_EXPONENT, 320, 8));
        assert!(ranks.iter().all(|&r| r < 40));
        // Rank 0 must dominate any single tail rank by a wide margin.
        let hot = ranks.iter().filter(|&&r| r == 0).count();
        let cold = ranks.iter().filter(|&&r| r >= 20).count();
        assert!(hot > 320 / 10, "hot key drew {hot} of 320");
        assert!(hot > cold / 2, "hot {hot} vs tail half {cold}");
    }

    #[test]
    fn skewed_runner_reports_verified_consistent_traffic() {
        // A scaled-down twin of the catalog scenario so the test suite
        // stays fast; the CLI runs the 2k catalog entry.
        let scenario = Scenario {
            name: SKEWED.into(),
            preset: Preset::DenseUrban,
            corpus: 40,
            queries: 4,
            seed: 7,
        };
        let report = run_skewed(&scenario, 2, 0.1).expect("skewed run");
        assert_eq!(report.backend, "geodab");
        assert_eq!(report.trajectories, 40);
        assert!(report.verified);
        assert!(report.consistent(), "{report:?}");
        assert_eq!(report.distinct_queries, 4);
        assert_eq!(report.stream_length, 4 * 8);
        assert!(report.hot_query_share > 0.25, "{report:?}");
        assert_eq!(report.points.len(), thread_ladder(2).len());
        for point in &report.points {
            assert!(point.requests > 0, "{point:?}");
            assert!(point.qps > 0.0);
            assert!(point.p50_ms <= point.p95_ms && point.p95_ms <= point.p99_ms);
        }
        let text = report.to_json().pretty();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("skewed"));
        assert_eq!(
            parsed
                .get("skew")
                .and_then(|s| s.get("distinct_queries"))
                .and_then(Json::as_f64),
            Some(4.0)
        );
        assert_eq!(
            parsed
                .get("query")
                .and_then(|q| q.get("consistent"))
                .and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(report.file_name(), "BENCH_skewed.json");
        // A skewed report is not a valid ingest-gate baseline.
        assert!(preflight_gate(&scenario, &text, 30.0).is_err());
    }

    #[test]
    fn skewed_scenario_is_in_the_catalog() {
        let scenario = find(SKEWED).expect("catalog has skewed");
        assert_eq!(scenario.preset, Preset::DenseUrban);
        assert_eq!(scenario.corpus, 2_000);
    }

    #[test]
    fn any_index_node_backend_roundtrips_and_replays_shard_ops() {
        let scenario = find("micro").expect("catalog has micro");
        let dataset = generate(&scenario);
        let config = GeodabConfig::default();
        let mut cluster = ClusterIndex::new(config, 1_000, 2).unwrap();
        cluster.insert_batch(dataset.records().iter().map(|r| (r.id, &r.trajectory)));
        let node = cluster.shard_node(0).unwrap();
        let bytes = Persist::to_snapshot(&node);
        let restored = AnyIndex::from_snapshot_bytes(&bytes).expect("node snapshot loads");
        assert_eq!(restored.backend_name(), "node");
        assert_eq!(TrajectoryIndex::len(&restored), node.len());
        assert_eq!(TrajectoryIndex::ids(&restored).count(), node.len());
        // The shared verification replay covers the node backend too.
        verify_against_rebuild(&restored, &scenario).expect("verify");

        // Shard-op replay lands on a node backend and is refused
        // anywhere else.
        let mut restored = restored;
        let fingerprinter = Fingerprinter::new(config);
        let fp = fingerprinter.normalize_and_fingerprint(&dataset.records()[0].trajectory);
        let op = WalOp::InsertFingerprints {
            id: TrajId::new(9_999),
            terms: fp.ordered().to_vec(),
        };
        restored
            .apply_wal_op(op.clone())
            .expect("node replays shard ops");
        let mut geodab = AnyIndex::empty("geodab", 0, 0).unwrap();
        let err = geodab.apply_wal_op(op).unwrap_err();
        assert!(err.contains("shard-server"), "{err}");
    }

    #[test]
    fn latency_gate_checks_p95_against_the_baseline() {
        let scenario = find("micro").expect("catalog has micro");
        let report = run_scenario(&scenario, &[1]);
        let own = report.to_json().pretty();

        // Against its own numbers both checks pass and the ceiling is
        // recorded.
        let verdict = check_gate(&report, &own, 30.0).expect("valid baseline");
        assert!(verdict.pass);
        let baseline_p95 = verdict.latency_baseline_p95.expect("baseline has p95");
        assert!((verdict.latency_ceiling.unwrap() - baseline_p95 * 1.3).abs() < 1e-9);

        // An impossibly fast baseline p95 fails the latency check even
        // with throughput far above the floor.
        let tight = r#"{"schema_version": 1, "scenario": "micro", "seed": 7,
                        "ingest": {"runs": [{"threads": 1, "traj_per_sec": 0.001}]},
                        "query": {"latency_ms": {"p95": 1e-12}}}"#;
        let verdict = check_gate(&report, tight, 30.0).expect("valid baseline");
        assert!(!verdict.pass, "{verdict:?}");
        assert!(verdict.current >= verdict.floor, "throughput was fine");
        assert!(verdict.latency_p95 > verdict.latency_ceiling.unwrap());

        // A baseline without latency skips the check (still gating
        // throughput).
        let no_latency = r#"{"schema_version": 1, "scenario": "micro", "seed": 7,
                             "ingest": {"runs": [{"threads": 1, "traj_per_sec": 0.001}]}}"#;
        let verdict = check_gate(&report, no_latency, 30.0).expect("valid baseline");
        assert!(verdict.pass);
        assert!(verdict.latency_baseline_p95.is_none());
        assert!(verdict.latency_ceiling.is_none());

        // A garbage p95 is rejected in parsing, not silently ignored.
        let bad = no_latency.replace(
            r#""ingest""#,
            r#""query": {"latency_ms": {"p95": -3}}, "ingest""#,
        );
        assert!(check_gate(&report, &bad, 30.0).unwrap_err().contains("p95"));
    }

    #[test]
    fn durability_run_measures_acks_recovery_and_compaction() {
        let scenario = find(DURABILITY).expect("catalog has durability");
        // Micro-sized: 8 acked inserts per policy and ~0.3 s per
        // compaction phase keep the test well under test-suite budget.
        let report = run_durability(&scenario, 8, 0.3).expect("durability run");
        assert_eq!(report.backend, "geodab");
        assert_eq!(report.acks.len(), 3, "{:?}", report.acks);
        let policies: Vec<&str> = report.acks.iter().map(|a| a.policy.as_str()).collect();
        assert_eq!(policies, ["always", "interval:5", "never"]);
        for run in &report.acks {
            assert_eq!(run.inserts, 8);
            assert!(run.acks_per_sec > 0.0, "{run:?}");
            assert!(
                run.p50_ms <= run.p95_ms && run.p95_ms <= run.p99_ms,
                "{run:?}"
            );
        }
        // Zero acked-write loss through the replay path…
        assert_eq!(report.replayed_records, 8);
        assert_eq!(report.recovered_trajectories, 8);
        // …and the compactor provably ran while queries flowed.
        assert!(report.compacted_watermark > 0, "{report:?}");
        assert!(report.baseline_query_p95_ms > 0.0);
        assert!(report.compacting_query_p95_ms > 0.0);
        assert!(report.consistent, "{report:?}");

        // The serialized report is machine-readable and shape-marked.
        let json = report.to_json();
        let text = json.pretty();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(
            parsed.get("kind").and_then(Json::as_str),
            Some("durability")
        );
        assert_eq!(
            parsed.get("schema_version").and_then(Json::as_f64),
            Some(SCHEMA_VERSION as f64)
        );
        assert_eq!(
            parsed
                .get("recovery")
                .and_then(|r| r.get("records"))
                .and_then(Json::as_f64),
            Some(8.0)
        );
        assert_eq!(report.file_name(), "BENCH_durability.json");

        // The ingest perf gate must reject a durability report as a
        // baseline instead of misreading its numbers.
        assert!(preflight_gate(&scenario, &text, 30.0).is_err());
    }

    #[test]
    fn gate_passes_within_allowance_and_fails_beyond_it() {
        let scenario = find("micro").expect("catalog has micro");
        let report = run_scenario(&scenario, &[1]);
        let own = report.to_json().pretty();
        // A run always clears a gate against its own numbers.
        let verdict = check_gate(&report, &own, 30.0).expect("own report is a valid baseline");
        assert!(verdict.pass);
        // The serialized baseline rounds to 3 decimals.
        assert!((verdict.current - verdict.baseline).abs() < 0.01);

        // An impossibly fast baseline fails the gate…
        let inflated = r#"{"schema_version": 1, "scenario": "micro", "seed": 7,
                           "ingest": {"runs": [{"threads": 1, "traj_per_sec": 1e12}]}}"#;
        let verdict = check_gate(&report, inflated, 30.0).expect("valid baseline");
        assert!(!verdict.pass, "{verdict:?}");
        assert!(verdict.floor > verdict.current);

        // …and malformed baselines are reported, not panicked on.
        assert!(check_gate(&report, "not json", 30.0).is_err());
        assert!(check_gate(&report, "{}", 30.0).is_err());
        let wrong = own.replace("\"micro\"", "\"smoke\"");
        assert!(check_gate(&report, &wrong, 30.0)
            .unwrap_err()
            .contains("scenario"));
        let wrong_version = own.replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(check_gate(&report, &wrong_version, 30.0)
            .unwrap_err()
            .contains("schema version"));
        // A baseline measured on a different workload (other seed) is not
        // comparable and must be rejected rather than gated against.
        let other_seed = own.replace("\"seed\": 7", "\"seed\": 8");
        assert!(check_gate(&report, &other_seed, 30.0)
            .unwrap_err()
            .contains("seed"));
        // Allowances of 100% or more would make the gate vacuous
        // (zero or negative floor): reject them.
        for pct in [100.0, 300.0, -5.0] {
            assert!(check_gate(&report, &own, pct)
                .unwrap_err()
                .contains("max regression"));
        }
    }
}
