//! A minimal, dependency-free JSON value: enough to emit the
//! `BENCH_*.json` workload reports and to parse them back (the CI perf
//! gate reads the checked-in baseline with the same code that wrote it).
//!
//! Objects preserve insertion order so emitted reports are byte-stable
//! for a given input — diffs of checked-in baselines stay readable.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always an `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Errors parsing JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses JSON text (one value, surrounded by optional whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters after the value"));
        }
        Ok(value)
    }

    /// Serializes with two-space indentation and a trailing newline — the
    /// exact shape of the checked-in baselines.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Numbers that are mathematically integers print without a fraction;
/// everything else uses Rust's shortest round-trip `f64` formatting.
/// Non-finite values (JSON has no spelling for them) print as `null`.
fn format_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by our own
                            // output; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unpaired surrogate in \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8 by
                    // construction: the parser takes `&str`).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits and sign characters are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_report_shape() {
        let value = Json::obj(vec![
            ("schema_version", Json::Num(1.0)),
            ("scenario", Json::Str("smoke".into())),
            (
                "ingest",
                Json::Arr(vec![Json::obj(vec![
                    ("threads", Json::Num(2.0)),
                    ("traj_per_sec", Json::Num(1234.5)),
                ])]),
            ),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
        ]);
        let text = value.pretty();
        assert_eq!(Json::parse(&text).unwrap(), value);
        // Byte-stable output.
        assert_eq!(Json::parse(&text).unwrap().pretty(), text);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(8.0).pretty(), "8\n");
        assert_eq!(Json::Num(-3.0).pretty(), "-3\n");
        assert_eq!(Json::Num(0.5).pretty(), "0.5\n");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null\n");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let value = Json::Str("tab\t quote\" slash\\ newline\n é".into());
        assert_eq!(Json::parse(&value.pretty()).unwrap(), value);
    }

    #[test]
    fn parses_standard_escapes_and_unicode() {
        let parsed = Json::parse(r#""aéb\/c""#).unwrap();
        assert_eq!(parsed, Json::Str("aéb/c".into()));
    }

    #[test]
    fn get_and_accessors_navigate() {
        let v = Json::parse(r#"{"a": {"b": [1, 2.5, "x"]}, "t": true}"#).unwrap();
        let arr = v.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("t"), Some(&Json::Bool(true)));
    }

    #[test]
    fn malformed_input_errors_with_offset() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "nul",
            "\"abc",
            "{\"a\":}",
            "[1 2]",
            "1 2",
            "{\"a\":1,}",
        ] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(err.offset <= bad.len(), "{bad:?}: {err}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn empty_containers_print_compact() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]\n");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}\n");
    }
}
