//! Shared workload setup for the figure-regeneration benches.
//!
//! Every table and figure of the paper's evaluation (Section VI) has a
//! bench target in `benches/`; this library holds the common scaffolding:
//! deterministic networks, datasets, index builders and a tiny fixed-width
//! table printer so each bench prints the same series the paper plots.
//!
//! Scale: the paper uses 5 000 routes x 20 trajectories (100 000 total).
//! Regenerating the *shape* of each figure does not need that volume, so
//! benches default to a reduced scale and honor the environment variable
//! `GEODABS_BENCH_SCALE=full` for paper-scale runs.

#![forbid(unsafe_code)]

pub mod json;
pub mod workload;

use geodabs_core::GeodabConfig;
use geodabs_gen::dataset::{Dataset, DatasetConfig};
use geodabs_index::{GeodabIndex, GeohashIndex, TrajectoryIndex};
use geodabs_roadnet::generators::{grid_network, GridConfig};
use geodabs_roadnet::RoadNetwork;

/// Workload sizes for a bench run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Routes in the dense dataset.
    pub routes: usize,
    /// Trajectories per route per direction.
    pub per_direction: usize,
    /// Queries evaluated per configuration.
    pub queries: usize,
}

impl Scale {
    /// The reduced default scale.
    pub fn quick() -> Scale {
        Scale {
            routes: 60,
            per_direction: 5,
            queries: 30,
        }
    }

    /// Paper-like scale (`GEODABS_BENCH_SCALE=full`). Still smaller than
    /// the paper's 5 000 routes to keep a full `cargo bench` tractable,
    /// but dense enough that every effect is visible at the same place.
    pub fn full() -> Scale {
        Scale {
            routes: 500,
            per_direction: 10,
            queries: 100,
        }
    }

    /// Reads the scale from the environment (`quick` unless
    /// `GEODABS_BENCH_SCALE=full`).
    pub fn from_env() -> Scale {
        match std::env::var("GEODABS_BENCH_SCALE").as_deref() {
            Ok("full") => Scale::full(),
            _ => Scale::quick(),
        }
    }
}

/// The evaluation road network: a perturbed grid covering roughly the
/// paper's 300 km² around central London.
pub fn london_network() -> RoadNetwork {
    grid_network(&GridConfig::with_area_km2(100.0), 0xC0FFEE)
}

/// The dense evaluation dataset on the given network.
pub fn dense_dataset(net: &RoadNetwork, scale: Scale, seed: u64) -> Dataset {
    let cfg = DatasetConfig {
        routes: scale.routes,
        per_direction: scale.per_direction,
        queries: scale.queries,
        ..DatasetConfig::default()
    };
    Dataset::generate(net, &cfg, seed).expect("grid networks are always routable")
}

/// Builds a geodab index over every record of the dataset.
pub fn build_geodab_index(ds: &Dataset, config: GeodabConfig) -> GeodabIndex {
    let mut idx = GeodabIndex::new(config);
    for r in ds.records() {
        idx.insert(r.id, &r.trajectory);
    }
    idx
}

/// Builds the geohash baseline index over every record of the dataset.
pub fn build_geohash_index(ds: &Dataset, depth: u8) -> GeohashIndex {
    let mut idx = GeohashIndex::new(depth);
    for r in ds.records() {
        idx.insert(r.id, &r.trajectory);
    }
    idx
}

/// Prints a fixed-width table header.
pub fn print_header(title: &str, columns: &[&str]) {
    println!();
    println!("== {title} ==");
    let row: Vec<String> = columns.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", row.join(" "));
    println!("{}", "-".repeat(15 * columns.len()));
}

/// Prints one fixed-width table row.
pub fn print_row(cells: &[String]) {
    let row: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", row.join(" "));
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a duration in milliseconds with two decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_to_quick() {
        // The variable is unset in the test environment.
        if std::env::var("GEODABS_BENCH_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::quick());
        }
    }

    #[test]
    fn tiny_dataset_builds_and_indexes() {
        let net = london_network();
        let scale = Scale {
            routes: 2,
            per_direction: 2,
            queries: 2,
        };
        let ds = dense_dataset(&net, scale, 1);
        assert_eq!(ds.records().len(), 8);
        let gi = build_geodab_index(&ds, GeodabConfig::default());
        assert_eq!(gi.len(), 8);
        let hi = build_geohash_index(&ds, 36);
        assert_eq!(hi.len(), 8);
    }
}
