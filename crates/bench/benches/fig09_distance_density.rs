//! Figure 9 — distance-computation cost as the candidate set densifies.
//!
//! One query trajectory of 1 000 points is compared against `c = 1..10`
//! candidates of 1 000 points each. DFD and DTW cost `O(c · t²)`; the
//! geodab method costs one fingerprint extraction plus `c` constant-time
//! Jaccard computations over pre-indexed bitmaps. The paper reports > 2.5 s
//! for 10 candidates with DFD/DTW and near-zero for geodabs.
//!
//! Run with `cargo bench -p geodabs-bench --bench fig09_distance_density`.

use geodabs_bench::*;
use geodabs_core::Fingerprinter;
use geodabs_distance::{dfd, dtw};
use geodabs_geo::Point;
use geodabs_traj::Trajectory;
use std::time::Instant;

/// A noisy eastward path of `n` points, ~30 m apart.
fn path(n: usize, offset_m: f64, wiggle_seed: u64) -> Trajectory {
    let start = Point::new(51.5074, -0.1278)
        .expect("valid point")
        .destination(0.0, offset_m);
    (0..n)
        .map(|i| {
            let wiggle = (((i as u64).wrapping_mul(wiggle_seed) % 17) as f64 - 8.0) * 2.0;
            start
                .destination(90.0, i as f64 * 30.0)
                .destination(0.0, wiggle)
        })
        .collect()
}

fn main() {
    let t = 1_000; // trajectory length, as in the paper
    let query = path(t, 0.0, 7);
    let fingerprinter = Fingerprinter::default();

    print_header(
        "Figure 9: time to score c candidates of 1000 points (ms)",
        &["density c", "DFD", "DTW", "Geodabs"],
    );
    for c in 1..=10usize {
        let candidates: Vec<Trajectory> = (0..c)
            .map(|i| path(t, i as f64 * 5.0, 13 + i as u64))
            .collect();

        let t0 = Instant::now();
        let mut acc = 0.0;
        for cand in &candidates {
            acc += dfd(&query, cand);
        }
        let dfd_time = t0.elapsed();

        let t0 = Instant::now();
        for cand in &candidates {
            acc += dtw(&query, cand);
        }
        let dtw_time = t0.elapsed();

        // Index-side fingerprints are precomputed (they are built at
        // insertion time); the query pays one extraction + c Jaccards.
        let cand_fps: Vec<_> = candidates
            .iter()
            .map(|cand| fingerprinter.normalize_and_fingerprint(cand))
            .collect();
        let t0 = Instant::now();
        let qfp = fingerprinter.normalize_and_fingerprint(&query);
        for fp in &cand_fps {
            acc += qfp.jaccard_distance(fp);
        }
        let geodab_time = t0.elapsed();
        std::hint::black_box(acc);

        print_row(&[c.to_string(), ms(dfd_time), ms(dtw_time), ms(geodab_time)]);
    }
}
