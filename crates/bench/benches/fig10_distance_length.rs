//! Figure 10 — distance-computation cost as trajectories lengthen.
//!
//! Ten candidates are scored against one query while the trajectory
//! length grows from 200 to 1 000 points. DFD/DTW grow quadratically in
//! the length; the geodab pipeline grows linearly (fingerprinting) with a
//! tiny constant.
//!
//! Run with `cargo bench -p geodabs-bench --bench fig10_distance_length`.

use geodabs_bench::*;
use geodabs_core::Fingerprinter;
use geodabs_distance::{dfd, dtw};
use geodabs_geo::Point;
use geodabs_traj::Trajectory;
use std::time::Instant;

fn path(n: usize, offset_m: f64, wiggle_seed: u64) -> Trajectory {
    let start = Point::new(51.5074, -0.1278)
        .expect("valid point")
        .destination(0.0, offset_m);
    (0..n)
        .map(|i| {
            let wiggle = (((i as u64).wrapping_mul(wiggle_seed) % 17) as f64 - 8.0) * 2.0;
            start
                .destination(90.0, i as f64 * 30.0)
                .destination(0.0, wiggle)
        })
        .collect()
}

fn main() {
    let c = 10; // candidate count, as in the paper
    let fingerprinter = Fingerprinter::default();

    print_header(
        "Figure 10: time to score 10 candidates of t points (ms)",
        &["length t", "DFD", "DTW", "Geodabs"],
    );
    for t in (200..=1_000).step_by(200) {
        let query = path(t, 0.0, 7);
        let candidates: Vec<Trajectory> = (0..c)
            .map(|i| path(t, i as f64 * 5.0, 13 + i as u64))
            .collect();

        let t0 = Instant::now();
        let mut acc = 0.0;
        for cand in &candidates {
            acc += dfd(&query, cand);
        }
        let dfd_time = t0.elapsed();

        let t0 = Instant::now();
        for cand in &candidates {
            acc += dtw(&query, cand);
        }
        let dtw_time = t0.elapsed();

        let cand_fps: Vec<_> = candidates
            .iter()
            .map(|cand| fingerprinter.normalize_and_fingerprint(cand))
            .collect();
        let t0 = Instant::now();
        let qfp = fingerprinter.normalize_and_fingerprint(&query);
        for fp in &cand_fps {
            acc += qfp.jaccard_distance(fp);
        }
        let geodab_time = t0.elapsed();
        std::hint::black_box(acc);

        print_row(&[t.to_string(), ms(dfd_time), ms(dtw_time), ms(geodab_time)]);
    }
}
