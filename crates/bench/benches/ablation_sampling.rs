//! Ablation — winnowing vs `h mod p == 0` fingerprint sampling.
//!
//! Section III-B of the paper describes the classic mod-p selection used
//! before winnowing existed. Both select a similar fraction of the k-gram
//! stream, but only winnowing guarantees that every shared run of `t`
//! points yields a shared fingerprint. The ablation measures, per method:
//! fingerprint density, and the fraction of (query, relevant) pairs that
//! end up sharing **zero** fingerprints — retrieval misses a pair like
//! that entirely.
//!
//! Run with `cargo bench -p geodabs-bench --bench ablation_sampling`.

use geodabs_bench::*;
use geodabs_core::winnow::{sample_mod_p, winnow};
use geodabs_core::{geodab, Fingerprints, GeodabConfig};
use geodabs_traj::{GeohashNormalizer, Normalizer, Trajectory};

/// Candidate geodab stream of a trajectory under the default config.
fn candidates(t: &Trajectory, config: &GeodabConfig) -> Vec<u32> {
    let norm = GeohashNormalizer::new(config.normalization_depth())
        .expect("valid depth")
        .normalize(t);
    if norm.len() < config.k() {
        return Vec::new();
    }
    norm.k_grams(config.k())
        .map(|g| geodab(g, config.prefix_bits()))
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let net = london_network();
    let ds = dense_dataset(&net, scale, 23);
    let config = GeodabConfig::default();
    // Winnowing density is 2/(w+1); choose p for a comparable density.
    let p = config.window().div_ceil(2).max(1) as u32;

    let mut rows: Vec<(&str, f64, f64, f64)> = Vec::new();
    for method in ["winnowing", "mod-p"] {
        let fingerprint = |t: &Trajectory| -> Fingerprints {
            let cands = candidates(t, &config);
            let picked = match method {
                "winnowing" => winnow(&cands, config.window()),
                _ => sample_mod_p(&cands, p),
            };
            Fingerprints::from_ordered(picked)
        };

        let mut total_fps = 0usize;
        let mut total_cands = 0usize;
        // Coverage guarantee: fraction of length-w candidate windows that
        // contain at least one selected fingerprint. Winnowing guarantees
        // 1.0 by construction; mod-p can leave arbitrarily long gaps, so
        // a long shared sub-trajectory may yield no common fingerprint.
        let mut windows = 0usize;
        let mut covered = 0usize;
        for r in ds.records() {
            total_fps += fingerprint(&r.trajectory).len();
            let cands = candidates(&r.trajectory, &config);
            total_cands += cands.len();
            let w = config.window();
            if cands.len() >= w {
                for win in cands.windows(w) {
                    windows += 1;
                    let hit = match method {
                        "winnowing" => true, // by the winnowing invariant
                        _ => win.iter().any(|h| h % p == 0),
                    };
                    if hit {
                        covered += 1;
                    }
                }
            }
        }
        let density = total_fps as f64 / total_cands.max(1) as f64;
        let coverage = covered as f64 / windows.max(1) as f64;

        // Guarantee check: query vs each relevant sibling.
        let mut pairs = 0usize;
        let mut zero_overlap = 0usize;
        for q in ds.queries() {
            let qfp = fingerprint(&q.trajectory);
            for id in ds.relevant_ids(q) {
                let rec = &ds.records()[id.raw() as usize];
                let rfp = fingerprint(&rec.trajectory);
                pairs += 1;
                if qfp.set().is_disjoint(rfp.set()) {
                    zero_overlap += 1;
                }
            }
        }
        rows.push((
            if method == "winnowing" {
                "winnowing"
            } else {
                "h mod p == 0"
            },
            density,
            zero_overlap as f64 / pairs.max(1) as f64,
            coverage,
        ));
    }

    print_header(
        "Ablation: fingerprint selection method",
        &["method", "density", "pairs missed", "win coverage"],
    );
    for (name, density, missed, coverage) in rows {
        print_row(&[name.to_string(), f3(density), f3(missed), f3(coverage)]);
    }
    println!();
    println!(
        "notes: 'pairs missed' = fraction of (query, relevant) pairs sharing \
         zero fingerprints (unretrievable no matter the ranking). 'win \
         coverage' = fraction of length-w candidate windows containing a \
         selection: winnowing guarantees 1.0 (any exactly-shared run of t \
         points yields a common fingerprint); mod-p does not, but picks by \
         value, which helps on noisy near-duplicates."
    );
}
