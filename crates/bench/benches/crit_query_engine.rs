//! Criterion benchmark of the pruned top-k query engine against the naive
//! collect-all-then-sort ranker on a 10 000-trajectory corpus.
//!
//! The corpus is synthetic but posting-realistic: 500 routes of ~60 terms
//! each, 20 trajectories per route sharing ~90% of their route's terms,
//! with a few region-level hot terms shared across routes — so posting
//! lists range from a handful of entries to thousands, which is exactly
//! the skew the rarest-first upper-bound pruning exploits.
//!
//! Run with `cargo bench -p geodabs-bench --bench crit_query_engine`.

use criterion::{criterion_group, criterion_main, Criterion};
use geodabs_core::{Fingerprints, GeodabConfig};
use geodabs_index::{GeodabIndex, SearchOptions, TrajectoryIndex};
use geodabs_traj::TrajId;
use std::hint::black_box;

const ROUTES: usize = 500;
const PER_ROUTE: usize = 20; // 10 000 trajectories total
const TERMS_PER_ROUTE: usize = 60;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One trajectory's fingerprint set: most of its route's terms, plus its
/// region's hot terms, plus a small unique tail.
fn trajectory_terms(rng: &mut XorShift, route: usize) -> Vec<u32> {
    let region = route / 25; // 20 regions of 25 routes
    let mut terms: Vec<u32> = Vec::with_capacity(TERMS_PER_ROUTE + 8);
    let route_base = 10_000 + (route as u32) * TERMS_PER_ROUTE as u32;
    for t in 0..TERMS_PER_ROUTE as u32 {
        // Keep ~90% of the route's terms.
        if rng.below(10) != 0 {
            terms.push(route_base + t);
        }
    }
    // Region-level hot terms: long posting lists shared by 500 trajectories.
    for h in 0..4u32 {
        terms.push(region as u32 * 8 + h);
    }
    // Unique noise tail.
    for _ in 0..4 {
        terms.push(1_000_000 + rng.below(4_000_000) as u32);
    }
    terms
}

fn build_corpus() -> (GeodabIndex, Vec<Fingerprints>) {
    let mut rng = XorShift(0xC0FFEE);
    let mut index = GeodabIndex::new(GeodabConfig::default());
    let mut queries = Vec::new();
    for route in 0..ROUTES {
        for i in 0..PER_ROUTE {
            let id = TrajId::new((route * PER_ROUTE + i) as u32);
            let terms = trajectory_terms(&mut rng, route);
            if i == 0 && route % 50 == 0 {
                // Query workload: a fresh perturbation of this route.
                queries.push(Fingerprints::from_ordered(trajectory_terms(
                    &mut rng, route,
                )));
            }
            index.insert_fingerprints(id, Fingerprints::from_ordered(terms));
        }
    }
    (index, queries)
}

type Ranker = fn(&GeodabIndex, &Fingerprints, &SearchOptions) -> Vec<geodabs_index::SearchResult>;

fn bench_query_engine(c: &mut Criterion) {
    let (index, queries) = build_corpus();
    assert_eq!(index.len(), ROUTES * PER_ROUTE);

    let engine: Ranker = GeodabIndex::search_fingerprints;
    let naive: Ranker = GeodabIndex::search_fingerprints_naive;
    let cases: [(&str, SearchOptions, Ranker); 6] = [
        (
            "engine_topk10_10k",
            SearchOptions::default().limit(10),
            engine,
        ),
        (
            "naive_topk10_10k",
            SearchOptions::default().limit(10),
            naive,
        ),
        (
            "engine_topk10_d0.4_10k",
            SearchOptions::default().max_distance(0.4).limit(10),
            engine,
        ),
        (
            "naive_topk10_d0.4_10k",
            SearchOptions::default().max_distance(0.4).limit(10),
            naive,
        ),
        ("engine_unbounded_10k", SearchOptions::default(), engine),
        ("naive_unbounded_10k", SearchOptions::default(), naive),
    ];
    for (name, options, ranker) in cases {
        c.bench_function(name, |b| {
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(ranker(&index, black_box(q), &options))
            })
        });
    }
}

criterion_group! {
    name = query_engine;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_query_engine
}
criterion_main!(query_engine);
