//! Ablation — normalization pipelines (Section V of the paper plus this
//! reproduction's robustness additions).
//!
//! Compares four pipelines on the same dense noisy dataset:
//!
//! * `identity` — fingerprint raw points (the Figure 5 (a) control),
//! * `plain grid` — the paper's literal Section V-A construction,
//! * `robust grid` — plain grid + moving-average smoothing + transition
//!   hysteresis (this reproduction's default; see DESIGN.md),
//! * `map matching` — the paper's Section V-B construction, interpolated
//!   at the cell scale.
//!
//! Reported per pipeline: mean R-precision, mean recall over the full
//! ranking, and indexing time (normalization is paid once per insert).
//!
//! Run with `cargo bench -p geodabs-bench --bench ablation_normalization`.

use geodabs_bench::*;
use geodabs_core::GeodabConfig;
use geodabs_index::eval::{precision_at, ranked_ids, recall_at};
use geodabs_index::{GeodabIndex, SearchOptions};
use geodabs_roadnet::matching::MatchConfig;
use geodabs_roadnet::SpatialIndex;
use geodabs_traj::{GeohashNormalizer, IdentityNormalizer, MapMatchNormalizer, Normalizer};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let net = london_network();
    let ds = dense_dataset(&net, scale, 31);
    let spatial = SpatialIndex::build(&net, 300.0);

    let identity = IdentityNormalizer;
    let plain = GeohashNormalizer::new(36).expect("valid depth");
    let robust = GeohashNormalizer::robust(36).expect("valid depth");
    let matched =
        MapMatchNormalizer::new(&net, &spatial, MatchConfig::default()).with_interpolation(85.0);
    let pipelines: Vec<(&str, &dyn Normalizer)> = vec![
        ("identity", &identity),
        ("plain grid", &plain),
        ("robust grid", &robust),
        ("map matching", &matched),
    ];

    print_header(
        "Ablation: normalization pipeline",
        &["pipeline", "R-precision", "recall", "index ms"],
    );
    for (name, normalizer) in pipelines {
        let t0 = Instant::now();
        let mut index = GeodabIndex::new(GeodabConfig::default());
        for r in ds.records() {
            index.insert_with_normalizer(normalizer, r.id, &r.trajectory);
        }
        let build = t0.elapsed();
        let mut rprec = 0.0;
        let mut recall = 0.0;
        for q in ds.queries() {
            let relevant = ds.relevant_ids(q);
            let hits =
                index.search_with_normalizer(normalizer, &q.trajectory, &SearchOptions::default());
            let ranked = ranked_ids(&hits);
            rprec += precision_at(&ranked, &relevant, relevant.len());
            recall += recall_at(&ranked, &relevant, usize::MAX);
        }
        let n = ds.queries().len() as f64;
        print_row(&[name.to_string(), f3(rprec / n), f3(recall / n), ms(build)]);
    }
    println!();
    println!(
        "the paper's plain grid suffers at this noise level (1 Hz, 20 m); \
         smoothing + hysteresis recover it, and map matching pays more at \
         indexing time for the best quality"
    );
}
