//! Criterion micro-benchmarks of the computational kernels underlying
//! every figure: haversine, geohash encoding, geodab construction,
//! winnowing, fingerprinting, Jaccard over roaring bitmaps, DTW and DFD,
//! plus reference-vs-optimized pairs for the roaring intersection ladder,
//! overlap counting, and point→cell encoding.
//!
//! Run with `cargo bench -p geodabs-bench --bench crit_kernels`. Set
//! `CRIT_QUICK=1` (the CI kernel-smoke step does) to shrink sample counts
//! and measurement time to a smoke-test budget.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use geodabs_core::winnow::{winnow, winnow_streaming};
use geodabs_core::{geodab, Fingerprinter};
use geodabs_distance::{dfd, dtw, edr, lcss_similarity};
use geodabs_geo::{morton, CellEncoder, Geohash, Point};
use geodabs_roaring::{kernels, RoaringBitmap};
use geodabs_traj::Trajectory;
use std::hint::black_box;

fn path(n: usize, offset_m: f64) -> Trajectory {
    let start = Point::new(51.5074, -0.1278)
        .expect("valid point")
        .destination(0.0, offset_m);
    (0..n)
        .map(|i| start.destination(90.0, i as f64 * 30.0))
        .collect()
}

fn bench_geo(c: &mut Criterion) {
    let a = Point::new(51.5074, -0.1278).expect("valid");
    let b = Point::new(48.8566, 2.3522).expect("valid");
    c.bench_function("haversine", |bench| {
        bench.iter(|| black_box(a).haversine_distance(black_box(b)))
    });
    c.bench_function("geohash_encode_36", |bench| {
        bench.iter(|| Geohash::encode(black_box(a), 36).expect("valid depth"))
    });
    let gram: Vec<Point> = (0..6)
        .map(|i| a.destination(90.0, i as f64 * 85.0))
        .collect();
    c.bench_function("geodab_6gram", |bench| {
        bench.iter(|| geodab(black_box(&gram), 16))
    });
}

fn bench_winnow(c: &mut Criterion) {
    let mut x: u32 = 99;
    let hashes: Vec<u32> = (0..1_000)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            x
        })
        .collect();
    c.bench_function("winnow_1000_w7", |bench| {
        bench.iter(|| winnow(black_box(&hashes), 7))
    });
    c.bench_function("winnow_streaming_1000_w7", |bench| {
        bench.iter(|| winnow_streaming(black_box(&hashes).iter().copied(), 7))
    });
}

fn bench_fingerprint(c: &mut Criterion) {
    let fp = Fingerprinter::default();
    let t = path(1_000, 0.0);
    c.bench_function("fingerprint_1000pt", |bench| {
        bench.iter(|| fp.normalize_and_fingerprint(black_box(&t)))
    });
}

fn bench_jaccard(c: &mut Criterion) {
    let a: RoaringBitmap = (0..2_000u32).map(|i| i * 3).collect();
    let b: RoaringBitmap = (0..2_000u32).map(|i| i * 3 + 3).collect();
    c.bench_function("roaring_jaccard_2k", |bench| {
        bench.iter(|| black_box(&a).jaccard_distance(black_box(&b)))
    });
    c.bench_function("roaring_union_2k", |bench| {
        bench.iter_batched(
            || (),
            |_| black_box(&a) | black_box(&b),
            BatchSize::SmallInput,
        )
    });
}

fn bench_distances(c: &mut Criterion) {
    let a = path(200, 0.0);
    let b = path(200, 10.0);
    c.bench_function("dtw_200x200", |bench| {
        bench.iter(|| dtw(black_box(&a), black_box(&b)))
    });
    c.bench_function("dfd_200x200", |bench| {
        bench.iter(|| dfd(black_box(&a), black_box(&b)))
    });
    c.bench_function("lcss_200x200", |bench| {
        bench.iter(|| lcss_similarity(black_box(&a), black_box(&b), 50.0))
    });
    c.bench_function("edr_200x200", |bench| {
        bench.iter(|| edr(black_box(&a), black_box(&b), 50.0))
    });
}

/// Sorted, deduplicated multiples of `stride` starting at `offset`.
fn run_u16(n: usize, stride: u16, offset: u16) -> Vec<u16> {
    let mut v: Vec<u16> = (0..n as u16)
        .map(|i| i.wrapping_mul(stride).wrapping_add(offset))
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

fn bench_intersection_ladder(c: &mut Criterion) {
    // Size-ratio ladder: 1:1 through 1:256, each measured with the
    // retained linear-merge reference and the galloping/dispatching path.
    // `small` samples every (len/n)-th element of `large`, so both sides
    // span the same value domain: the linear merge has to traverse the
    // whole large side while galloping spends ~n·log probes. The
    // 4k_vs_256 rung sits exactly at the GALLOP_RATIO cutover, so its
    // dispatch stays linear — the ladder shows where the crossover pays.
    let large = run_u16(4_096, 13, 0);
    for (label, small_n) in [
        ("4k_vs_4k", 4_096usize),
        ("4k_vs_256", 256),
        ("4k_vs_64", 64),
        ("4k_vs_16", 16),
    ] {
        let small: Vec<u16> = large
            .iter()
            .copied()
            .step_by(large.len() / small_n)
            .take(small_n)
            .collect();
        let (s, l) = (small.clone(), large.clone());
        c.bench_function(&format!("intersect_{label}_linear"), move |bench| {
            bench.iter(|| {
                let mut n = 0u32;
                kernels::intersect_visit_linear(black_box(&s), black_box(&l), |_| n += 1);
                n
            })
        });
        let (s, l) = (small, large.clone());
        c.bench_function(&format!("intersect_{label}_gallop"), move |bench| {
            bench.iter(|| {
                let mut n = 0u32;
                kernels::intersect_visit(black_box(&s), black_box(&l), |_| n += 1);
                n
            })
        });
    }
    // Dense word-level AND: scalar loop vs the 8-word chunked kernel.
    let wa: Vec<u64> = (0..1024u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let wb: Vec<u64> = (0..1024u64)
        .map(|i| i.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .collect();
    let (a, b) = (wa.clone(), wb.clone());
    c.bench_function("bitmap_and_len_scalar", move |bench| {
        bench.iter(|| kernels::and_words_len_scalar(black_box(&a), black_box(&b)))
    });
    let (a, b) = (wa, wb);
    c.bench_function("bitmap_and_len_chunked", move |bench| {
        bench.iter(|| kernels::and_words_len(black_box(&a), black_box(&b)))
    });
}

fn bench_overlap_counting(c: &mut Criterion) {
    // The query engine's admitted-scan phase: bump a dense accumulator for
    // every member of `posting ∩ admitted`, via the old per-id iterator and
    // the new batch-decoding visitor.
    let posting: RoaringBitmap = (0..40_000u32).map(|i| i * 3).collect();
    let admitted: RoaringBitmap = (0..40_000u32).map(|i| i * 2).collect();
    let capacity = 120_001usize;
    let (p, a) = (posting.clone(), admitted.clone());
    c.bench_function("overlap_iter_bump_reference", move |bench| {
        bench.iter_batched(
            || vec![0u32; capacity],
            |mut counts| {
                for dense in p.intersection_iter(&a) {
                    counts[dense as usize] += 1;
                }
                counts
            },
            BatchSize::SmallInput,
        )
    });
    let (p, a) = (posting, admitted);
    c.bench_function("overlap_for_each_bump", move |bench| {
        bench.iter_batched(
            || vec![0u32; capacity],
            |mut counts| {
                p.intersection_for_each(&a, |dense| counts[dense as usize] += 1);
                counts
            },
            BatchSize::SmallInput,
        )
    });
    // The snapshot loader's live check: does every slot in this posting
    // list point at a live trajectory? The old path counted the full
    // intersection and compared cardinalities; the new one asks
    // `is_subset`, which bails out at the first vacant slot.
    let live: RoaringBitmap = (0..60_000u32).filter(|&v| v != 1_002).collect();
    let list: RoaringBitmap = (0..60_000u32).step_by(3).collect();
    let (li, lv) = (list.clone(), live.clone());
    c.bench_function("live_check_count_reference", move |bench| {
        bench.iter(|| black_box(&li).intersection_len(black_box(&lv)) == li.len())
    });
    let (li, lv) = (list, live);
    c.bench_function("live_check_subset_early_exit", move |bench| {
        bench.iter(|| black_box(&li).is_subset(black_box(&lv)))
    });
}

fn bench_encode(c: &mut Criterion) {
    let t = path(1_000, 0.0);
    let points = t.points().to_vec();
    let pts = points.clone();
    c.bench_function("cells_1000pt_encode_loop", move |bench| {
        bench.iter(|| {
            let mut cells: Vec<u64> = pts
                .iter()
                .map(|&p| Geohash::encode(p, 36).expect("valid depth").bits())
                .collect();
            cells.sort_unstable();
            cells.dedup();
            cells
        })
    });
    let pts = points;
    let enc = CellEncoder::new(36).expect("valid depth");
    c.bench_function("cells_1000pt_encoder", move |bench| {
        bench.iter(|| enc.cell_set(black_box(&pts)))
    });
    c.bench_function("morton_spread_masks", |bench| {
        bench.iter(|| morton::spread_masks(black_box(0xDEAD_BEEF)))
    });
    c.bench_function("morton_spread_lut", |bench| {
        bench.iter(|| morton::spread(black_box(0xDEAD_BEEF)))
    });
    c.bench_function("base32_decode_11ch", |bench| {
        bench.iter(|| Geohash::from_base32(black_box("u4pruydqqvj")).expect("valid"))
    });
}

/// Full-precision config by default; `CRIT_QUICK=1` shrinks the budget to
/// a smoke test (used by the CI `kernel-smoke` step).
fn config() -> Criterion {
    if std::env::var_os("CRIT_QUICK").is_some() {
        Criterion::default()
            .sample_size(5)
            .measurement_time(std::time::Duration::from_millis(100))
            .warm_up_time(std::time::Duration::from_millis(10))
    } else {
        Criterion::default()
            .sample_size(20)
            .measurement_time(std::time::Duration::from_secs(2))
            .warm_up_time(std::time::Duration::from_millis(500))
    }
}

criterion_group! {
    name = kernels_suite;
    config = config();
    targets = bench_geo, bench_winnow, bench_fingerprint, bench_jaccard, bench_distances,
        bench_intersection_ladder, bench_overlap_counting, bench_encode
}
criterion_main!(kernels_suite);
