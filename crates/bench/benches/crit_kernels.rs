//! Criterion micro-benchmarks of the computational kernels underlying
//! every figure: haversine, geohash encoding, geodab construction,
//! winnowing, fingerprinting, Jaccard over roaring bitmaps, DTW and DFD.
//!
//! Run with `cargo bench -p geodabs-bench --bench crit_kernels`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use geodabs_core::winnow::{winnow, winnow_streaming};
use geodabs_core::{geodab, Fingerprinter};
use geodabs_distance::{dfd, dtw, edr, lcss_similarity};
use geodabs_geo::{Geohash, Point};
use geodabs_roaring::RoaringBitmap;
use geodabs_traj::Trajectory;
use std::hint::black_box;

fn path(n: usize, offset_m: f64) -> Trajectory {
    let start = Point::new(51.5074, -0.1278)
        .expect("valid point")
        .destination(0.0, offset_m);
    (0..n)
        .map(|i| start.destination(90.0, i as f64 * 30.0))
        .collect()
}

fn bench_geo(c: &mut Criterion) {
    let a = Point::new(51.5074, -0.1278).expect("valid");
    let b = Point::new(48.8566, 2.3522).expect("valid");
    c.bench_function("haversine", |bench| {
        bench.iter(|| black_box(a).haversine_distance(black_box(b)))
    });
    c.bench_function("geohash_encode_36", |bench| {
        bench.iter(|| Geohash::encode(black_box(a), 36).expect("valid depth"))
    });
    let gram: Vec<Point> = (0..6)
        .map(|i| a.destination(90.0, i as f64 * 85.0))
        .collect();
    c.bench_function("geodab_6gram", |bench| {
        bench.iter(|| geodab(black_box(&gram), 16))
    });
}

fn bench_winnow(c: &mut Criterion) {
    let mut x: u32 = 99;
    let hashes: Vec<u32> = (0..1_000)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            x
        })
        .collect();
    c.bench_function("winnow_1000_w7", |bench| {
        bench.iter(|| winnow(black_box(&hashes), 7))
    });
    c.bench_function("winnow_streaming_1000_w7", |bench| {
        bench.iter(|| winnow_streaming(black_box(&hashes).iter().copied(), 7))
    });
}

fn bench_fingerprint(c: &mut Criterion) {
    let fp = Fingerprinter::default();
    let t = path(1_000, 0.0);
    c.bench_function("fingerprint_1000pt", |bench| {
        bench.iter(|| fp.normalize_and_fingerprint(black_box(&t)))
    });
}

fn bench_jaccard(c: &mut Criterion) {
    let a: RoaringBitmap = (0..2_000u32).map(|i| i * 3).collect();
    let b: RoaringBitmap = (0..2_000u32).map(|i| i * 3 + 3).collect();
    c.bench_function("roaring_jaccard_2k", |bench| {
        bench.iter(|| black_box(&a).jaccard_distance(black_box(&b)))
    });
    c.bench_function("roaring_union_2k", |bench| {
        bench.iter_batched(
            || (),
            |_| black_box(&a) | black_box(&b),
            BatchSize::SmallInput,
        )
    });
}

fn bench_distances(c: &mut Criterion) {
    let a = path(200, 0.0);
    let b = path(200, 10.0);
    c.bench_function("dtw_200x200", |bench| {
        bench.iter(|| dtw(black_box(&a), black_box(&b)))
    });
    c.bench_function("dfd_200x200", |bench| {
        bench.iter(|| dfd(black_box(&a), black_box(&b)))
    });
    c.bench_function("lcss_200x200", |bench| {
        bench.iter(|| lcss_similarity(black_box(&a), black_box(&b), 50.0))
    });
    c.bench_function("edr_200x200", |bench| {
        bench.iter(|| edr(black_box(&a), black_box(&b), 50.0))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_geo, bench_winnow, bench_fingerprint, bench_jaccard, bench_distances
}
criterion_main!(kernels);
