//! Figure 12 — PR curves of the geodab index vs the geohash baseline.
//!
//! Every route of the dense dataset has a return path, so a
//! direction-blind geohash index retrieves twice as many "matches" as are
//! relevant and its precision plateaus at 0.5 as recall grows. Geodabs
//! discriminate direction and keep precision high.
//!
//! Run with `cargo bench -p geodabs-bench --bench fig12_pr_index`.

use geodabs_bench::*;
use geodabs_core::GeodabConfig;
use geodabs_index::eval::{average_pr_curve, pr_curve, ranked_ids};
use geodabs_index::{SearchOptions, TrajectoryIndex};

fn main() {
    let scale = Scale::from_env();
    let net = london_network();
    let ds = dense_dataset(&net, scale, 12);
    let geodab_index = build_geodab_index(&ds, GeodabConfig::default());
    let geohash_index = build_geohash_index(&ds, 36);

    let mut dab_curves = Vec::new();
    let mut hash_curves = Vec::new();
    for q in ds.queries() {
        let relevant = ds.relevant_ids(q);
        let dab_hits = geodab_index.search(&q.trajectory, &SearchOptions::default());
        dab_curves.push(pr_curve(&ranked_ids(&dab_hits), &relevant));
        let hash_hits = geohash_index.search(&q.trajectory, &SearchOptions::default());
        hash_curves.push(pr_curve(&ranked_ids(&hash_hits), &relevant));
    }
    let dab_avg = average_pr_curve(&dab_curves, 11);
    let hash_avg = average_pr_curve(&hash_curves, 11);

    print_header(
        "Figure 12: precision at recall, geodabs vs geohash",
        &["recall", "Geodabs", "Geohash"],
    );
    for g in 0..11 {
        print_row(&[
            f3(g as f64 / 10.0),
            f3(dab_avg[g].precision),
            f3(hash_avg[g].precision),
        ]);
    }
    println!();
    println!(
        "note: geohash plateaus toward 0.5 at high recall (return paths are \
         indistinguishable); geodabs stay near 1.0"
    );
}
