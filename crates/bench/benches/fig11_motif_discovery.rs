//! Figure 11 — motif-discovery cost, BTM vs geodabs.
//!
//! A query trajectory is matched against `c = 1..10` candidates; for each
//! pair, the best common motif of a fixed ground length is discovered
//! either exactly with BTM (DFD over every window pair, with lower-bound
//! pruning) or approximately over the winnowed geodab sequences. The paper
//! reports seconds for BTM and milliseconds for geodabs.
//!
//! Run with `cargo bench -p geodabs-bench --bench fig11_motif_discovery`.

use geodabs_bench::*;
use geodabs_core::{discover_motif, Fingerprinter};
use geodabs_distance::btm;
use geodabs_geo::Point;
use geodabs_traj::Trajectory;
use std::time::Instant;

/// Builds a path that wanders but shares its central stretch across seeds.
fn path_with_shared_core(n: usize, seed: u64) -> Trajectory {
    let start = Point::new(51.5074, -0.1278).expect("valid point");
    let approach = (seed % 7) as f64 * 400.0;
    let mut pts = Vec::with_capacity(n);
    // Individual approach segment.
    for i in 0..n / 4 {
        pts.push(
            start
                .destination(180.0, approach)
                .destination(90.0, i as f64 * 40.0),
        );
    }
    // Shared core, identical for every seed.
    for i in 0..n / 2 {
        pts.push(start.destination(90.0, (n / 4) as f64 * 40.0 + i as f64 * 40.0));
    }
    // Individual exit segment.
    for i in 0..n - n / 4 - n / 2 {
        pts.push(
            start
                .destination(90.0, ((n / 4) + (n / 2)) as f64 * 40.0)
                .destination(0.0, approach + i as f64 * 40.0),
        );
    }
    Trajectory::new(pts)
}

fn main() {
    let n = 240; // points per trajectory
    let motif_points = 40; // motif length for BTM, in points
    let query = path_with_shared_core(n, 0);
    let fingerprinter = Fingerprinter::default();
    let qfp = fingerprinter.normalize_and_fingerprint(&query);
    // Fingerprints per point, to convert the motif length (the paper's
    // `f = l * a` conversion with a = fingerprints per meter).
    let per_point = qfp.len() as f64 / n as f64;
    let motif_fps = ((motif_points as f64 * per_point).round() as usize).max(2);

    print_header(
        "Figure 11: motif discovery over c candidates (ms)",
        &["density c", "BTM", "Geodabs", "BTM dist m", "Geodab dJ"],
    );
    for c in 1..=10usize {
        let candidates: Vec<Trajectory> = (1..=c)
            .map(|i| path_with_shared_core(n, i as u64))
            .collect();

        let t0 = Instant::now();
        let mut btm_best = f64::INFINITY;
        for cand in &candidates {
            if let Some(m) = btm(&query, cand, motif_points) {
                btm_best = btm_best.min(m.distance);
            }
        }
        let btm_time = t0.elapsed();

        let cand_fps: Vec<_> = candidates
            .iter()
            .map(|cand| fingerprinter.normalize_and_fingerprint(cand))
            .collect();
        let t0 = Instant::now();
        let mut dab_best = f64::INFINITY;
        for fp in &cand_fps {
            if let Some(m) = discover_motif(&qfp, fp, motif_fps) {
                dab_best = dab_best.min(m.distance);
            }
        }
        let dab_time = t0.elapsed();

        print_row(&[
            c.to_string(),
            ms(btm_time),
            ms(dab_time),
            format!("{btm_best:.1}"),
            f3(dab_best),
        ]);
    }
}
