//! Figure 8 — "Verifying configuration parameters with a PR curve".
//!
//! Sweeps the geohash normalization depth (32/34/36/38/40 bits) and plots
//! the 11-point interpolated average precision/recall curve of ranked
//! geodab retrieval over the dense dataset. The paper finds 36 bits
//! dominates its shallower and deeper neighbors.
//!
//! Run with `cargo bench -p geodabs-bench --bench fig08_pr_normalization`.

use geodabs_bench::*;
use geodabs_core::GeodabConfig;
use geodabs_index::eval::{average_pr_curve, pr_curve, ranked_ids};
use geodabs_index::{SearchOptions, TrajectoryIndex};

fn main() {
    let scale = Scale::from_env();
    let net = london_network();
    let ds = dense_dataset(&net, scale, 8);
    let depths: [u8; 5] = [32, 34, 36, 38, 40];

    let mut curves_per_depth = Vec::new();
    for &depth in &depths {
        let config = GeodabConfig::builder()
            .normalization_depth(depth)
            .build()
            .expect("depths are valid");
        let index = build_geodab_index(&ds, config);
        let mut curves = Vec::new();
        for q in ds.queries() {
            let hits = index.search(&q.trajectory, &SearchOptions::default());
            let relevant = ds.relevant_ids(q);
            curves.push(pr_curve(&ranked_ids(&hits), &relevant));
        }
        curves_per_depth.push(average_pr_curve(&curves, 11));
    }

    print_header(
        "Figure 8: precision at recall, by normalization depth",
        &[
            "recall", "32 bits", "34 bits", "36 bits", "38 bits", "40 bits",
        ],
    );
    for g in 0..11 {
        let mut row = vec![f3(g as f64 / 10.0)];
        for curve in &curves_per_depth {
            row.push(f3(curve[g].precision));
        }
        print_row(&row);
    }

    // Area under the averaged PR curve per depth, as a single-number
    // summary of which depth wins.
    print_header(
        "Figure 8 summary: mean interpolated precision",
        &["depth", "mean precision"],
    );
    for (i, &depth) in depths.iter().enumerate() {
        let mean: f64 = curves_per_depth[i].iter().map(|p| p.precision).sum::<f64>() / 11.0;
        print_row(&[format!("{depth} bits"), f3(mean)]);
    }
}
