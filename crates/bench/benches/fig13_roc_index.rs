//! Figure 13 — ROC curves and AUC of the geodab index vs the geohash
//! baseline.
//!
//! Both indexes retrieve essentially every relevant trajectory (sensitivity
//! near 1 at vanishing false-positive rates — the paper reports AUCs of
//! 0.999889 for geodabs and 0.9999521 for geohash), but the geodab curve
//! climbs more steeply: its first results are more often relevant.
//!
//! Run with `cargo bench -p geodabs-bench --bench fig13_roc_index`.

use geodabs_bench::*;
use geodabs_core::GeodabConfig;
use geodabs_index::eval::{auc, ranked_ids, roc_curve};
use geodabs_index::{SearchOptions, TrajectoryIndex};

fn main() {
    let scale = Scale::from_env();
    let net = london_network();
    let ds = dense_dataset(&net, scale, 13);
    let corpus = ds.records().len();
    let geodab_index = build_geodab_index(&ds, GeodabConfig::default());
    let geohash_index = build_geohash_index(&ds, 36);

    // Averaged ROC over queries, reported on a fixed FPR grid focused on
    // the narrow interval the paper plots (0 .. 5e-4 .. full).
    let grid: Vec<f64> = vec![
        0.0, 1e-4, 2e-4, 3e-4, 4e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1.0,
    ];
    let mut dab_tpr = vec![0.0f64; grid.len()];
    let mut hash_tpr = vec![0.0f64; grid.len()];
    let mut dab_auc = 0.0f64;
    let mut hash_auc = 0.0f64;
    for q in ds.queries() {
        let relevant = ds.relevant_ids(q);
        let dab_hits = ranked_ids(&geodab_index.search(&q.trajectory, &SearchOptions::default()));
        let hash_hits = ranked_ids(&geohash_index.search(&q.trajectory, &SearchOptions::default()));
        let dab_roc = roc_curve(&dab_hits, &relevant, corpus);
        let hash_roc = roc_curve(&hash_hits, &relevant, corpus);
        for (gi, &fpr) in grid.iter().enumerate() {
            dab_tpr[gi] += tpr_at(&dab_roc, fpr);
            hash_tpr[gi] += tpr_at(&hash_roc, fpr);
        }
        dab_auc += auc(&dab_hits, &relevant, corpus);
        hash_auc += auc(&hash_hits, &relevant, corpus);
    }
    let nq = ds.queries().len() as f64;

    print_header(
        "Figure 13: sensitivity at 1-specificity, geodabs vs geohash",
        &["1-specificity", "Geodabs", "Geohash"],
    );
    for (gi, &fpr) in grid.iter().enumerate() {
        print_row(&[
            format!("{fpr:.0e}"),
            f3(dab_tpr[gi] / nq),
            f3(hash_tpr[gi] / nq),
        ]);
    }

    print_header("Figure 13 summary: AUC", &["index", "AUC"]);
    print_row(&["Geodabs".to_string(), format!("{:.6}", dab_auc / nq)]);
    print_row(&["Geohash".to_string(), format!("{:.6}", hash_auc / nq)]);
}

/// Sensitivity reached at or before the given false-positive rate.
fn tpr_at(roc: &[geodabs_index::eval::RocPoint], fpr: f64) -> f64 {
    roc.iter()
        .filter(|p| p.false_positive_rate <= fpr + 1e-15)
        .map(|p| p.true_positive_rate)
        .fold(0.0, f64::max)
}
