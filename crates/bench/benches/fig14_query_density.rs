//! Figure 14 — time to execute 100 queries as the dataset densifies.
//!
//! Indexes are built from growing samples of the dense dataset (densities
//! 1..10, up to 10 000 trajectories at full scale). The geohash baseline
//! cannot discriminate among overlapping trajectories, so its candidate
//! sets — and query times — grow with density; geodab candidate sets stay
//! focused and query time stays flat.
//!
//! Run with `cargo bench -p geodabs-bench --bench fig14_query_density`.

use geodabs_bench::*;
use geodabs_core::GeodabConfig;
use geodabs_index::{GeodabIndex, GeohashIndex, SearchOptions, TrajectoryIndex};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let net = london_network();
    // Generate once at maximum density; prefixes give the lower densities.
    let ds = dense_dataset(&net, scale, 14);
    let records = ds.records();
    let queries = ds.queries();

    print_header(
        &format!(
            "Figure 14: executing {} queries on a dataset of increasing density (ms)",
            queries.len()
        ),
        &[
            "density",
            "trajectories",
            "Geohash",
            "Geodabs",
            "geohash cand",
            "geodab cand",
        ],
    );
    for density in 1..=10usize {
        let take = records.len() * density / 10;
        let mut geodab_index = GeodabIndex::new(GeodabConfig::default());
        let mut geohash_index = GeohashIndex::new(36);
        for r in &records[..take] {
            geodab_index.insert(r.id, &r.trajectory);
            geohash_index.insert(r.id, &r.trajectory);
        }

        let t0 = Instant::now();
        let mut hash_candidates = 0usize;
        for q in queries {
            hash_candidates += geohash_index
                .search(&q.trajectory, &SearchOptions::default())
                .len();
        }
        let hash_time = t0.elapsed();

        let t0 = Instant::now();
        let mut dab_candidates = 0usize;
        for q in queries {
            dab_candidates += geodab_index
                .search(&q.trajectory, &SearchOptions::default())
                .len();
        }
        let dab_time = t0.elapsed();

        print_row(&[
            density.to_string(),
            take.to_string(),
            ms(hash_time),
            ms(dab_time),
            (hash_candidates / queries.len().max(1)).to_string(),
            (dab_candidates / queries.len().max(1)).to_string(),
        ]);
    }
}
