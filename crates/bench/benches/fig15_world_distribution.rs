//! Figure 15 — distribution of trajectories over 16-bit geohash cells at
//! world scale.
//!
//! The paper plots trajectories per 16-bit geohash from the full
//! OpenStreetMap dump and observes extreme peaks (Mexico City) separated
//! by voids (oceans). The synthetic world model reproduces that shape:
//! a Zipf-weighted set of population centers in continental latitude
//! bands. The bench prints a down-sampled histogram over the Z-order axis
//! plus the summary statistics that matter for sharding.
//!
//! Run with `cargo bench -p geodabs-bench --bench fig15_world_distribution`.

use geodabs_bench::*;
use geodabs_gen::world::{WorldActivity, WorldConfig};

fn main() {
    let cfg = WorldConfig::default();
    let world = WorldActivity::generate(&cfg, 15);
    let sorted = world.sorted_counts();

    // Down-sample the 2^16 cell axis into 64 buckets for display.
    const BUCKETS: usize = 64;
    let mut buckets = vec![0u64; BUCKETS];
    for &(cell, count) in &sorted {
        let b = (cell as usize * BUCKETS) >> 16;
        buckets[b] += count;
    }
    let peak_bucket = buckets.iter().copied().max().unwrap_or(1).max(1);

    print_header(
        "Figure 15: trajectories per geohash range (64 buckets over 2^16 cells)",
        &["bucket", "cells from", "trajectories", "bar"],
    );
    for (b, &count) in buckets.iter().enumerate() {
        let bar_len = ((count as f64 / peak_bucket as f64) * 40.0).round() as usize;
        print_row(&[
            b.to_string(),
            format!("{}", b << 10),
            count.to_string(),
            "#".repeat(bar_len),
        ]);
    }

    print_header("Figure 15 summary", &["metric", "value"]);
    print_row(&["total trajectories".into(), world.total().to_string()]);
    print_row(&["non-empty cells".into(), world.counts().len().to_string()]);
    print_row(&["occupancy".into(), format!("{:.4}", world.occupancy())]);
    print_row(&["peak cell".into(), world.peak().to_string()]);
    print_row(&[
        "peak / mean(non-empty)".into(),
        format!(
            "{:.1}",
            world.peak() as f64 / (world.total() as f64 / world.counts().len() as f64)
        ),
    ]);
}
