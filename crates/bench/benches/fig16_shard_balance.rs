//! Figure 16 — distribution of trajectories over a 10-node cluster with
//! 100 vs 10 000 shards.
//!
//! Locality-preserving shards follow the Z-order curve, so with only 100
//! shards whole hotspot regions land on single nodes and the cluster is
//! lopsided; with 10 000 shards the modulo assignment interleaves the
//! curve finely across nodes and the load evens out — at the cost of
//! queries touching more shards.
//!
//! Run with `cargo bench -p geodabs-bench --bench fig16_shard_balance`.

use geodabs_bench::*;
use geodabs_cluster::balance::{coefficient_of_variation, imbalance, node_loads};
use geodabs_cluster::ShardRouter;
use geodabs_gen::world::{WorldActivity, WorldConfig};

fn main() {
    let world = WorldActivity::generate(&WorldConfig::default(), 16);
    let cells = world.sorted_counts();
    let nodes = 10usize;

    let coarse = ShardRouter::new(16, 100, nodes).expect("valid");
    let fine = ShardRouter::new(16, 10_000, nodes).expect("valid");
    let coarse_loads = node_loads(&coarse, &cells);
    let fine_loads = node_loads(&fine, &cells);

    print_header(
        "Figure 16: trajectories per node (10 nodes)",
        &["node", "100 shards", "10000 shards"],
    );
    for (n, (c, f)) in coarse_loads.iter().zip(&fine_loads).enumerate() {
        let name = char::from(b'A' + n as u8);
        print_row(&[name.to_string(), c.to_string(), f.to_string()]);
    }

    print_header(
        "Figure 16 summary",
        &["metric", "100 shards", "10000 shards"],
    );
    print_row(&[
        "imbalance (max/mean)".into(),
        format!("{:.2}", imbalance(&coarse_loads)),
        format!("{:.2}", imbalance(&fine_loads)),
    ]);
    print_row(&[
        "coeff. of variation".into(),
        format!("{:.3}", coefficient_of_variation(&coarse_loads)),
        format!("{:.3}", coefficient_of_variation(&fine_loads)),
    ]);
}
