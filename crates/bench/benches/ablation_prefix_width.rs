//! Ablation — geohash prefix width inside the 32-bit geodab.
//!
//! The paper fixes a 16-bit prefix (Section VI-E). This ablation sweeps
//! the split between locality (prefix) and discrimination (hash suffix):
//! a narrow prefix leaves more hash bits (fewer accidental collisions,
//! but poor shard locality); a wide prefix sharpens routing but squeezes
//! the order-sensitive suffix. Reported per width: retrieval quality
//! (mean precision@10) and routing locality (mean shards contacted per
//! query on a 10 000-shard cluster).
//!
//! Run with `cargo bench -p geodabs-bench --bench ablation_prefix_width`.

use geodabs_bench::*;
use geodabs_cluster::ClusterIndex;
use geodabs_core::GeodabConfig;
use geodabs_index::eval::{precision_at, ranked_ids};
use geodabs_index::SearchOptions;

fn main() {
    let scale = Scale::from_env();
    let net = london_network();
    let ds = dense_dataset(&net, scale, 21);

    print_header(
        "Ablation: geodab prefix width",
        &["prefix bits", "R-precision", "shards/query", "nodes/query"],
    );
    for prefix_bits in [8u8, 12, 16, 20, 24] {
        let config = GeodabConfig::builder()
            .prefix_bits(prefix_bits)
            .build()
            .expect("widths are valid");
        let mut cluster = ClusterIndex::new(config, 10_000, 10).expect("valid cluster");
        for r in ds.records() {
            cluster.insert(r.id, &r.trajectory);
        }
        let mut rprec = 0.0;
        let mut shards = 0usize;
        let mut nodes = 0usize;
        for q in ds.queries() {
            let (hits, stats) = cluster.search_with_stats(&q.trajectory, &SearchOptions::default());
            let relevant = ds.relevant_ids(q);
            // R-precision: precision at the size of the relevant set.
            rprec += precision_at(&ranked_ids(&hits), &relevant, relevant.len());
            shards += stats.shards_contacted;
            nodes += stats.nodes_contacted;
        }
        let nq = ds.queries().len() as f64;
        print_row(&[
            prefix_bits.to_string(),
            f3(rprec / nq),
            format!("{:.1}", shards as f64 / nq),
            format!("{:.1}", nodes as f64 / nq),
        ]);
    }
    println!();
    println!(
        "note: wider prefixes spread a local query over more shards of the \
         Z-curve; narrower prefixes concentrate routing but leave locality \
         to the hash suffix"
    );
}
