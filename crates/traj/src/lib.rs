//! Trajectory model and normalization for the geodabs workspace.
//!
//! A [`Trajectory`] is a sequence of latitude/longitude points `S = ⟨s1,
//! ..., sn⟩` (Section II-A of the paper). Before fingerprinting, similar
//! trajectories must be *normalized* so they converge toward similar point
//! sequences (Section V). Two normalizers are provided, matching the
//! paper's Sections V-A and V-B:
//!
//! * [`GeohashNormalizer`] — snap points to the centers of geohash cells of
//!   a constant depth and drop consecutive duplicates (lightweight),
//! * [`MapMatchNormalizer`] — snap trajectories onto a road network with
//!   HMM/Viterbi map matching (heavier, higher quality).
//!
//! # Examples
//!
//! ```
//! use geodabs_geo::Point;
//! use geodabs_traj::{GeohashNormalizer, Normalizer, Trajectory};
//!
//! # fn main() -> Result<(), geodabs_geo::GeoError> {
//! let raw = Trajectory::new(vec![
//!     Point::new(51.50740, -0.12780)?,
//!     Point::new(51.50741, -0.12781)?, // nearly identical sample
//!     Point::new(51.50900, -0.12500)?,
//! ]);
//! let norm = GeohashNormalizer::new(36)?.normalize(&raw);
//! // The two near-duplicates collapse into a single grid point.
//! assert!(norm.len() < raw.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod normalize;
mod simplify;
mod trajectory;

pub use normalize::{
    moving_average, GeohashNormalizer, IdentityNormalizer, MapMatchNormalizer, Normalizer,
};
pub use simplify::{resample, simplify_rdp};
pub use trajectory::{KGrams, TrajId, Trajectory};
