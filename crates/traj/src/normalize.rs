//! Trajectory normalization (Section V of the paper).
//!
//! Normalization is the analogue of stemming and case-folding in text
//! retrieval: it makes highly similar trajectories converge toward
//! identical point sequences so that their fingerprints overlap. The
//! *extent* of normalization is a precision/recall trade-off — Section V-C
//! and Figure 8 of the paper — which the `fig08_pr_normalization` bench
//! reproduces by sweeping the geohash depth.

use geodabs_geo::{CellEncoder, GeoError, Geohash, Point};
use geodabs_roadnet::matching::{map_match, MatchConfig};
use geodabs_roadnet::{RoadNetError, RoadNetwork, SpatialIndex};

use crate::Trajectory;

/// A normalization function `N(S) = S'` over trajectories.
///
/// Implementations must be deterministic: indexing-time and query-time
/// normalization have to agree for retrieval to work.
pub trait Normalizer {
    /// Normalizes a trajectory into a canonical point sequence.
    fn normalize(&self, trajectory: &Trajectory) -> Trajectory;
}

/// The identity normalization (no-op); useful as an experimental control,
/// like Figure 5 (a) of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdentityNormalizer;

impl Normalizer for IdentityNormalizer {
    fn normalize(&self, trajectory: &Trajectory) -> Trajectory {
        trajectory.clone()
    }
}

/// Smooths a trajectory with a centered moving average of `window`
/// samples (a standard GPS de-noising step). `window <= 1` is a no-op.
///
/// For the paper's 1 Hz / 20 m-noise data, a window of ~9 samples cuts
/// the noise by a factor of three while barely touching the geometry of
/// road-constrained paths.
pub fn moving_average(trajectory: &Trajectory, window: usize) -> Trajectory {
    let pts = trajectory.points();
    if window <= 1 || pts.len() < 2 {
        return trajectory.clone();
    }
    let half = window / 2;
    let mut out = Vec::with_capacity(pts.len());
    for i in 0..pts.len() {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(pts.len());
        let n = (hi - lo) as f64;
        let lat = pts[lo..hi].iter().map(Point::lat).sum::<f64>() / n;
        let lon = pts[lo..hi].iter().map(Point::lon).sum::<f64>() / n;
        out.push(Point::clamped(lat, lon));
    }
    Trajectory::new(out)
}

/// Geohash-grid normalization (Section V-A): snap every point to the
/// center of its geohash cell at a constant depth and remove consecutive
/// duplicates.
///
/// The paper finds a depth of **36 bits** optimal for its London dataset
/// (cells of ~95 m x 76 m there).
///
/// Two optional robustness measures handle noisy high-rate samples,
/// where raw cell sequences flicker across cell boundaries and destroy
/// `k`-gram matches:
///
/// * **smoothing** — a centered moving average over the raw points
///   ([`moving_average`]),
/// * **hysteresis** — a Schmitt trigger on cell transitions: the current
///   cell is kept until a sample moves at least a margin (a fraction of
///   the cell extent) beyond its boundary.
///
/// [`GeohashNormalizer::new`] enables neither (the paper's literal
/// construction); [`GeohashNormalizer::robust`] enables both with
/// defaults tuned for 1 Hz GPS with ~20 m noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeohashNormalizer {
    depth: u8,
    smoothing_window: usize,
    hysteresis_fraction: f64,
}

impl GeohashNormalizer {
    /// Creates a plain normalizer snapping to cells of `depth` bits, with
    /// no smoothing and no hysteresis.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidDepth`] if `depth` is zero or above 64
    /// (a zero depth would collapse every trajectory to one point).
    pub fn new(depth: u8) -> Result<GeohashNormalizer, GeoError> {
        if depth == 0 || depth > geodabs_geo::MAX_DEPTH {
            return Err(GeoError::InvalidDepth(depth));
        }
        Ok(GeohashNormalizer {
            depth,
            smoothing_window: 1,
            hysteresis_fraction: 0.0,
        })
    }

    /// Creates a noise-robust normalizer: smoothing window of 9 samples
    /// and a transition hysteresis of 0.4 cell extents.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidDepth`] as [`GeohashNormalizer::new`].
    pub fn robust(depth: u8) -> Result<GeohashNormalizer, GeoError> {
        Ok(GeohashNormalizer::new(depth)?
            .with_smoothing_window(9)
            .with_hysteresis(0.4))
    }

    /// Sets the moving-average window (`1` disables smoothing).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_smoothing_window(self, window: usize) -> GeohashNormalizer {
        assert!(window >= 1, "smoothing window must be at least 1");
        GeohashNormalizer {
            smoothing_window: window,
            ..self
        }
    }

    /// Sets the transition hysteresis as a fraction of the cell extent
    /// (`0.0` disables it).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn with_hysteresis(self, fraction: f64) -> GeohashNormalizer {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "hysteresis fraction must be in [0, 1]"
        );
        GeohashNormalizer {
            hysteresis_fraction: fraction,
            ..self
        }
    }

    /// The grid depth in bits.
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// The moving-average window in samples (1 = off).
    pub fn smoothing_window(&self) -> usize {
        self.smoothing_window
    }

    /// The transition hysteresis as a fraction of the cell extent.
    pub fn hysteresis_fraction(&self) -> f64 {
        self.hysteresis_fraction
    }

    /// Meters a point must exceed a cell's bounds by before a transition
    /// is accepted.
    fn margin_meters(&self, cell: &Geohash) -> f64 {
        if self.hysteresis_fraction == 0.0 {
            return 0.0;
        }
        let b = cell.bounds();
        self.hysteresis_fraction * b.width_meters().min(b.height_meters())
    }
}

impl Normalizer for GeohashNormalizer {
    fn normalize(&self, trajectory: &Trajectory) -> Trajectory {
        let smoothed;
        let input = if self.smoothing_window > 1 {
            smoothed = moving_average(trajectory, self.smoothing_window);
            &smoothed
        } else {
            trajectory
        };
        let mut out: Vec<Point> = Vec::with_capacity(input.len());
        let mut current: Option<Geohash> = None;
        let encoder = CellEncoder::new(self.depth).expect("depth validated at construction");
        for p in input.iter() {
            let h = encoder.encode(p);
            match current {
                Some(c) if c == h => {}
                Some(c) => {
                    if distance_outside_cell(p, &c) > self.margin_meters(&c) {
                        out.push(h.center());
                        current = Some(h);
                    }
                }
                None => {
                    out.push(h.center());
                    current = Some(h);
                }
            }
        }
        Trajectory::new(out)
    }
}

/// Resamples a polyline at a fixed step along its segments, always keeping
/// the first and last points. Deterministic given the input.
fn interpolate_path(points: &[Point], step_m: f64) -> Vec<Point> {
    if points.len() < 2 {
        return points.to_vec();
    }
    let mut out = Vec::with_capacity(points.len() * 2);
    let mut until_next = 0.0;
    for w in points.windows(2) {
        let seg = w[0].haversine_distance(w[1]);
        if seg == 0.0 {
            continue;
        }
        let mut offset = until_next;
        while offset < seg {
            out.push(w[0].lerp(w[1], offset / seg));
            offset += step_m;
        }
        until_next = offset - seg;
    }
    out.push(points[points.len() - 1]);
    out
}

/// Meters by which `p` lies outside the bounding box of `cell` (0 inside).
fn distance_outside_cell(p: Point, cell: &Geohash) -> f64 {
    let b = cell.bounds();
    let dlat = if p.lat() < b.min_lat() {
        b.min_lat() - p.lat()
    } else if p.lat() > b.max_lat() {
        p.lat() - b.max_lat()
    } else {
        0.0
    };
    let dlon = if p.lon() < b.min_lon() {
        b.min_lon() - p.lon()
    } else if p.lon() > b.max_lon() {
        p.lon() - b.max_lon()
    } else {
        0.0
    };
    let meters_per_deg = 111_195.0;
    let lat_m = dlat * meters_per_deg;
    let lon_m = dlon * meters_per_deg * p.lat().to_radians().cos();
    (lat_m * lat_m + lon_m * lon_m).sqrt()
}

/// Map-matching normalization (Section V-B): snap the trajectory onto the
/// node sequence of a road network using HMM/Viterbi matching, following
/// Newson & Krumm.
///
/// This is computationally costly but, as the paper notes, the price is
/// paid only when building the index (and once per query).
pub struct MapMatchNormalizer<'a> {
    network: &'a RoadNetwork,
    index: &'a SpatialIndex,
    config: MatchConfig,
    interpolation_step_m: Option<f64>,
}

impl<'a> MapMatchNormalizer<'a> {
    /// Creates a normalizer matching onto `network` through its spatial
    /// `index`, emitting one point per matched node.
    pub fn new(
        network: &'a RoadNetwork,
        index: &'a SpatialIndex,
        config: MatchConfig,
    ) -> MapMatchNormalizer<'a> {
        MapMatchNormalizer {
            network,
            index,
            config,
            interpolation_step_m: None,
        }
    }

    /// Additionally interpolates the matched node path at a fixed step
    /// (meters). On networks with long edges this makes the output dense
    /// enough that a single mismatched node only perturbs a local stretch
    /// of the downstream `k`-gram stream instead of most of it; a step
    /// around the fingerprinting cell size (~85 m at 36 bits) works well.
    ///
    /// # Panics
    ///
    /// Panics if `step_m` is not strictly positive.
    pub fn with_interpolation(mut self, step_m: f64) -> MapMatchNormalizer<'a> {
        assert!(step_m > 0.0, "interpolation step must be positive");
        self.interpolation_step_m = Some(step_m);
        self
    }

    /// Matches and converts to the node-center point sequence, reporting
    /// matching failures.
    ///
    /// # Errors
    ///
    /// Propagates [`RoadNetError`] from the matcher (empty trajectory, no
    /// candidates near any point).
    pub fn try_normalize(&self, trajectory: &Trajectory) -> Result<Trajectory, RoadNetError> {
        let nodes = map_match(self.network, self.index, trajectory.points(), &self.config)?;
        let mut out = Vec::with_capacity(nodes.len());
        for n in nodes {
            out.push(self.network.point(n).expect("matcher returns valid nodes"));
        }
        if let Some(step) = self.interpolation_step_m {
            out = interpolate_path(&out, step);
        }
        Ok(Trajectory::new(out))
    }
}

impl Normalizer for MapMatchNormalizer<'_> {
    /// Infallible [`Normalizer`] entry point: trajectories that cannot be
    /// matched at all normalize to the empty trajectory (they will produce
    /// no fingerprints and never match queries, which is the correct
    /// retrieval behavior for off-network noise).
    fn normalize(&self, trajectory: &Trajectory) -> Trajectory {
        self.try_normalize(trajectory).unwrap_or_default()
    }
}

impl std::fmt::Debug for MapMatchNormalizer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapMatchNormalizer")
            .field("nodes", &self.network.node_count())
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodabs_roadnet::generators::{grid_network, GridConfig};
    use geodabs_roadnet::router::shortest_path;

    fn p(lat: f64, lon: f64) -> Point {
        Point::new(lat, lon).unwrap()
    }

    #[test]
    fn identity_is_a_noop() {
        let t: Trajectory = (0..5).map(|i| p(0.0, i as f64 * 0.01)).collect();
        assert_eq!(IdentityNormalizer.normalize(&t), t);
    }

    #[test]
    fn geohash_normalizer_validates_depth() {
        assert!(GeohashNormalizer::new(0).is_err());
        assert!(GeohashNormalizer::new(65).is_err());
        assert_eq!(GeohashNormalizer::new(36).unwrap().depth(), 36);
    }

    #[test]
    fn geohash_normalization_dedups_consecutive_cells() {
        // Three samples inside one 36-bit cell followed by a distant point.
        let base = p(51.5074, -0.1278);
        let t = Trajectory::new(vec![
            base,
            base.destination(90.0, 1.0),
            base.destination(0.0, 1.0),
            base.destination(90.0, 500.0),
        ]);
        let n = GeohashNormalizer::new(36).unwrap().normalize(&t);
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn geohash_normalization_outputs_cell_centers() {
        let t = Trajectory::new(vec![p(51.5074, -0.1278)]);
        let n = GeohashNormalizer::new(36).unwrap().normalize(&t);
        let cell = Geohash::encode(p(51.5074, -0.1278), 36).unwrap();
        assert_eq!(n.points()[0], cell.center());
    }

    #[test]
    fn geohash_normalization_is_idempotent() {
        let t: Trajectory = (0..30)
            .map(|i| p(51.5 + i as f64 * 0.001, -0.12 + i as f64 * 0.0007))
            .collect();
        let norm = GeohashNormalizer::new(36).unwrap();
        let once = norm.normalize(&t);
        let twice = norm.normalize(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn noisy_twins_converge_under_geohash_normalization() {
        // Two samplings of the same path with sub-cell noise normalize to
        // the same sequence: the core property N is designed for.
        let steps: Vec<Point> = (0..20)
            .map(|i| p(51.5074, -0.1278).destination(90.0, i as f64 * 90.0))
            .collect();
        let a = Trajectory::new(steps.iter().map(|q| q.destination(45.0, 4.0)).collect());
        let b = Trajectory::new(steps.iter().map(|q| q.destination(225.0, 4.0)).collect());
        let norm = GeohashNormalizer::new(30).unwrap();
        assert_eq!(norm.normalize(&a), norm.normalize(&b));
    }

    #[test]
    fn deeper_normalization_preserves_more_points() {
        let t: Trajectory = (0..50)
            .map(|i| p(51.5074, -0.1278).destination(90.0, i as f64 * 30.0))
            .collect();
        let shallow = GeohashNormalizer::new(30).unwrap().normalize(&t).len();
        let deep = GeohashNormalizer::new(40).unwrap().normalize(&t).len();
        assert!(deep >= shallow, "deep {deep} < shallow {shallow}");
    }

    #[test]
    fn moving_average_is_noop_for_window_one() {
        let t: Trajectory = (0..5).map(|i| p(0.0, i as f64 * 0.01)).collect();
        assert_eq!(moving_average(&t, 1), t);
        assert_eq!(moving_average(&t, 0), t);
        assert_eq!(
            moving_average(&Trajectory::default(), 9),
            Trajectory::default()
        );
    }

    #[test]
    fn moving_average_preserves_length_and_reduces_noise() {
        // A straight path with alternating lateral noise.
        let base: Vec<Point> = (0..40)
            .map(|i| p(51.5074, -0.1278).destination(90.0, i as f64 * 15.0))
            .collect();
        let noisy: Trajectory = base
            .iter()
            .enumerate()
            .map(|(i, q)| q.destination(if i % 2 == 0 { 0.0 } else { 180.0 }, 20.0))
            .collect();
        let smoothed = moving_average(&noisy, 9);
        assert_eq!(smoothed.len(), noisy.len());
        // Residual distance to the true path shrinks substantially.
        let err = |t: &Trajectory| -> f64 {
            t.iter()
                .zip(&base)
                .map(|(a, b)| a.haversine_distance(*b))
                .sum::<f64>()
                / t.len() as f64
        };
        assert!(err(&smoothed) < err(&noisy) / 3.0);
    }

    #[test]
    fn hysteresis_suppresses_boundary_flicker() {
        // Alternate samples on either side of a cell boundary: plain
        // normalization flickers, hysteresis keeps one cell.
        let depth = 36;
        let cell = Geohash::encode(p(51.5074, -0.1278), depth).unwrap();
        let b = cell.bounds();
        let inside = Point::new(b.center().lat(), b.max_lon() - 1e-5).unwrap();
        let outside = Point::new(b.center().lat(), b.max_lon() + 1e-5).unwrap();
        let flicker: Trajectory = (0..20)
            .map(|i| if i % 2 == 0 { inside } else { outside })
            .collect();
        let plain = GeohashNormalizer::new(depth).unwrap().normalize(&flicker);
        let hyst = GeohashNormalizer::new(depth)
            .unwrap()
            .with_hysteresis(0.4)
            .normalize(&flicker);
        assert!(plain.len() > 10, "plain flickers: {}", plain.len());
        assert_eq!(hyst.len(), 1, "hysteresis holds the first cell");
    }

    #[test]
    fn hysteresis_still_follows_real_transitions() {
        // A genuine eastward march must still produce multiple cells.
        let t: Trajectory = (0..40)
            .map(|i| p(51.5074, -0.1278).destination(90.0, i as f64 * 50.0))
            .collect();
        let n = GeohashNormalizer::robust(36).unwrap().normalize(&t);
        assert!(n.len() >= 10, "only {} cells", n.len());
    }

    #[test]
    fn robust_normalizer_accessors_and_validation() {
        let n = GeohashNormalizer::robust(36).unwrap();
        assert_eq!(n.depth(), 36);
        assert_eq!(n.smoothing_window(), 9);
        assert!((n.hysteresis_fraction() - 0.4).abs() < 1e-12);
        let plain = GeohashNormalizer::new(36).unwrap();
        assert_eq!(plain.smoothing_window(), 1);
        assert_eq!(plain.hysteresis_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_smoothing_window_panics() {
        let _ = GeohashNormalizer::new(36).unwrap().with_smoothing_window(0);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn hysteresis_out_of_range_panics() {
        let _ = GeohashNormalizer::new(36).unwrap().with_hysteresis(1.5);
    }

    #[test]
    fn noisy_twins_converge_better_with_robust_normalizer() {
        // Heavier noise than the sub-cell case above: the robust pipeline
        // must produce closer sequences than the plain one.
        use std::collections::HashSet;
        let steps: Vec<Point> = (0..120)
            .map(|i| p(51.5074, -0.1278).destination(90.0, i as f64 * 14.0))
            .collect();
        let wobble = |phase: f64| -> Trajectory {
            steps
                .iter()
                .enumerate()
                .map(|(i, q)| {
                    q.destination(
                        if ((i as f64 + phase) as usize).is_multiple_of(2) {
                            0.0
                        } else {
                            180.0
                        },
                        18.0,
                    )
                })
                .collect()
        };
        let a = wobble(0.0);
        let b = wobble(1.0);
        let cells = |t: &Trajectory, n: &GeohashNormalizer| -> HashSet<u64> {
            n.normalize(t)
                .iter()
                .map(|q| Geohash::encode(q, 36).unwrap().bits())
                .collect()
        };
        let plain = GeohashNormalizer::new(36).unwrap();
        let robust = GeohashNormalizer::robust(36).unwrap();
        let jac = |x: &HashSet<u64>, y: &HashSet<u64>| {
            x.intersection(y).count() as f64 / x.union(y).count().max(1) as f64
        };
        let plain_j = jac(&cells(&a, &plain), &cells(&b, &plain));
        let robust_j = jac(&cells(&a, &robust), &cells(&b, &robust));
        assert!(
            robust_j >= plain_j,
            "robust {robust_j:.2} should not lose to plain {plain_j:.2}"
        );
    }

    #[test]
    fn map_match_normalizer_snaps_to_network_nodes() {
        let net = grid_network(&GridConfig::default(), 42);
        let idx = SpatialIndex::build(&net, 300.0);
        let from = net.node_ids().next().unwrap();
        let to = net.node_ids().nth(60).unwrap();
        let route = shortest_path(&net, from, to).unwrap();
        let t = Trajectory::new(route.points().to_vec());
        let norm = MapMatchNormalizer::new(&net, &idx, MatchConfig::default());
        let n = norm.try_normalize(&t).unwrap();
        assert_eq!(n.points(), route.points());
    }

    #[test]
    fn map_match_normalizer_maps_failures_to_empty() {
        let net = grid_network(&GridConfig::default(), 42);
        let idx = SpatialIndex::build(&net, 300.0);
        let norm = MapMatchNormalizer::new(&net, &idx, MatchConfig::default());
        let sahara = Trajectory::new(vec![p(23.0, 13.0)]);
        assert!(norm.try_normalize(&sahara).is_err());
        assert!(norm.normalize(&sahara).is_empty());
        assert!(norm.normalize(&Trajectory::default()).is_empty());
    }

    #[test]
    fn interpolated_map_matching_is_dense_and_deterministic() {
        let net = grid_network(&GridConfig::default(), 42);
        let idx = SpatialIndex::build(&net, 300.0);
        let from = net.node_ids().next().unwrap();
        let to = net.node_ids().nth(60).unwrap();
        let route = shortest_path(&net, from, to).unwrap();
        let t = Trajectory::new(route.points().to_vec());
        let plain = MapMatchNormalizer::new(&net, &idx, MatchConfig::default());
        let dense =
            MapMatchNormalizer::new(&net, &idx, MatchConfig::default()).with_interpolation(85.0);
        let np = plain.try_normalize(&t).unwrap();
        let nd = dense.try_normalize(&t).unwrap();
        assert!(nd.len() > np.len(), "{} vs {}", nd.len(), np.len());
        // Consecutive interpolated points are at most ~step apart.
        for w in nd.points().windows(2) {
            assert!(w[0].haversine_distance(w[1]) <= 86.0);
        }
        // Endpoints preserved.
        assert_eq!(nd.points().first(), np.points().first());
        assert_eq!(nd.points().last(), np.points().last());
        // Deterministic.
        assert_eq!(nd, dense.try_normalize(&t).unwrap());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_interpolation_step_panics() {
        let net = grid_network(&GridConfig::default(), 42);
        let idx = SpatialIndex::build(&net, 300.0);
        let _ = MapMatchNormalizer::new(&net, &idx, MatchConfig::default()).with_interpolation(0.0);
    }

    #[test]
    fn normalizers_are_object_safe() {
        let t: Trajectory = (0..3).map(|i| p(0.0, i as f64 * 0.01)).collect();
        let norms: Vec<Box<dyn Normalizer>> = vec![
            Box::new(IdentityNormalizer),
            Box::new(GeohashNormalizer::new(36).unwrap()),
        ];
        for n in &norms {
            let _ = n.normalize(&t);
        }
    }
}
