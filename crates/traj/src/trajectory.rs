use geodabs_geo::{BoundingBox, GeoError, Point};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a trajectory in a dataset or an index.
///
/// Ids are dense `u32` values so they can double as entries of posting
/// lists and roaring bitmaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TrajId(u32);

impl TrajId {
    /// Creates an id from a raw value.
    pub fn new(raw: u32) -> TrajId {
        TrajId(raw)
    }

    /// The raw value.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TrajId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u32> for TrajId {
    fn from(raw: u32) -> TrajId {
        TrajId(raw)
    }
}

/// A discrete trajectory: the point sequence a GPS device records for a
/// moving object (Section II-A of the paper).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trajectory {
    points: Vec<Point>,
}

impl Trajectory {
    /// Creates a trajectory from a point sequence (may be empty).
    pub fn new(points: Vec<Point>) -> Trajectory {
        Trajectory { points }
    }

    /// Number of points, the `length(S)` of the paper.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trajectory has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The underlying point sequence.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Iterates over the points in order.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Point>> {
        self.points.iter().copied()
    }

    /// Appends a point.
    pub fn push(&mut self, p: Point) {
        self.points.push(p);
    }

    /// Ground length: the sum of haversine distances between consecutive
    /// points, in meters.
    pub fn ground_length_meters(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].haversine_distance(w[1]))
            .sum()
    }

    /// The sub-trajectory (motif, `S̄` in the paper) covering
    /// `start..start + len` points.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the trajectory bounds.
    pub fn motif(&self, start: usize, len: usize) -> Trajectory {
        Trajectory {
            points: self.points[start..start + len].to_vec(),
        }
    }

    /// The trajectory traversed in the opposite direction.
    pub fn reversed(&self) -> Trajectory {
        Trajectory {
            points: self.points.iter().rev().copied().collect(),
        }
    }

    /// Iterator over all `k`-grams: sliding windows of `k` consecutive
    /// points (Figure 4 (c) of the paper).
    ///
    /// Yields nothing if the trajectory is shorter than `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn k_grams(&self, k: usize) -> KGrams<'_> {
        assert!(k > 0, "k-gram size must be positive");
        KGrams {
            points: &self.points,
            k,
            pos: 0,
        }
    }

    /// The bounding box of the trajectory.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::EmptyPointSet`] for an empty trajectory.
    pub fn bounds(&self) -> Result<BoundingBox, GeoError> {
        BoundingBox::enclosing(self.iter())
    }
}

impl FromIterator<Point> for Trajectory {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Trajectory {
        Trajectory {
            points: iter.into_iter().collect(),
        }
    }
}

impl Extend<Point> for Trajectory {
    fn extend<I: IntoIterator<Item = Point>>(&mut self, iter: I) {
        self.points.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trajectory {
    type Item = Point;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Point>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the `k`-grams of a trajectory.
///
/// Created by [`Trajectory::k_grams`].
#[derive(Debug, Clone)]
pub struct KGrams<'a> {
    points: &'a [Point],
    k: usize,
    pos: usize,
}

impl<'a> Iterator for KGrams<'a> {
    type Item = &'a [Point];

    fn next(&mut self) -> Option<&'a [Point]> {
        if self.pos + self.k <= self.points.len() {
            let gram = &self.points[self.pos..self.pos + self.k];
            self.pos += 1;
            Some(gram)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.points.len() + 1)
            .saturating_sub(self.k)
            .saturating_sub(self.pos);
        (n, Some(n))
    }
}

impl ExactSizeIterator for KGrams<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(lat: f64, lon: f64) -> Point {
        Point::new(lat, lon).unwrap()
    }

    fn line(n: usize) -> Trajectory {
        (0..n).map(|i| p(0.0, i as f64 * 0.001)).collect()
    }

    #[test]
    fn len_and_empty() {
        assert!(Trajectory::default().is_empty());
        assert_eq!(line(5).len(), 5);
        assert!(!line(1).is_empty());
    }

    #[test]
    fn ground_length_sums_segments() {
        let t = line(3);
        // Two segments of ~111.2 m each.
        assert!((t.ground_length_meters() - 2.0 * 111.2).abs() < 1.0);
        assert_eq!(Trajectory::default().ground_length_meters(), 0.0);
        assert_eq!(line(1).ground_length_meters(), 0.0);
    }

    #[test]
    fn motif_extracts_subsequence() {
        let t = line(10);
        let m = t.motif(2, 3);
        assert_eq!(m.len(), 3);
        assert_eq!(m.points()[0], t.points()[2]);
        assert_eq!(m.points()[2], t.points()[4]);
    }

    #[test]
    #[should_panic]
    fn motif_out_of_bounds_panics() {
        let _ = line(3).motif(2, 5);
    }

    #[test]
    fn reversed_flips_order() {
        let t = line(4);
        let r = t.reversed();
        assert_eq!(r.points()[0], t.points()[3]);
        assert_eq!(r.reversed(), t);
    }

    #[test]
    fn k_grams_count_and_content() {
        let t = line(6);
        let grams: Vec<_> = t.k_grams(5).collect();
        assert_eq!(grams.len(), 2); // |S| - k + 1 = 6 - 5 + 1
        assert_eq!(grams[0], &t.points()[0..5]);
        assert_eq!(grams[1], &t.points()[1..6]);
        assert_eq!(t.k_grams(5).len(), 2);
    }

    #[test]
    fn k_grams_short_trajectory_is_empty() {
        assert_eq!(line(3).k_grams(5).count(), 0);
        assert_eq!(Trajectory::default().k_grams(1).count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_panics() {
        let _ = line(3).k_grams(0);
    }

    #[test]
    fn k_gram_of_one_is_each_point() {
        let t = line(4);
        assert_eq!(t.k_grams(1).count(), 4);
    }

    #[test]
    fn traj_id_roundtrip_and_display() {
        let id = TrajId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.to_string(), "T42");
        assert_eq!(TrajId::from(42u32), id);
    }

    #[test]
    fn bounds_requires_points() {
        assert!(Trajectory::default().bounds().is_err());
        let bb = line(3).bounds().unwrap();
        for q in line(3).iter() {
            assert!(bb.contains(q));
        }
    }

    #[test]
    fn collect_and_extend() {
        let mut t: Trajectory = [p(1.0, 1.0)].into_iter().collect();
        t.extend([p(2.0, 2.0), p(3.0, 3.0)]);
        assert_eq!(t.len(), 3);
        t.push(p(4.0, 4.0));
        assert_eq!(t.len(), 4);
        let via_ref: Vec<Point> = (&t).into_iter().collect();
        assert_eq!(via_ref.len(), 4);
    }

    proptest! {
        #[test]
        fn prop_k_gram_count_formula(n in 0usize..50, k in 1usize..12) {
            let t = line(n);
            let expected = if n >= k { n - k + 1 } else { 0 };
            prop_assert_eq!(t.k_grams(k).count(), expected);
        }

        #[test]
        fn prop_reversed_preserves_length(n in 0usize..50) {
            let t = line(n);
            let r = t.reversed();
            prop_assert_eq!(r.len(), t.len());
            prop_assert!((r.ground_length_meters() - t.ground_length_meters()).abs() < 1e-9);
        }
    }
}
