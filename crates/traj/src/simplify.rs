//! Trajectory simplification (Ramer–Douglas–Peucker).
//!
//! An extension beyond the paper: RDP is the standard way to shrink
//! trajectories before storage or transmission while bounding the
//! geometric error. It composes with the normalization pipeline — a
//! simplified trajectory normalizes to (nearly) the same cell sequence
//! as the original as long as the tolerance stays below the cell size.

use geodabs_geo::Point;

use crate::Trajectory;

/// Simplifies a trajectory with the Ramer–Douglas–Peucker algorithm:
/// keeps the endpoints and, recursively, every point farther than
/// `tolerance_m` meters from the chord of its segment.
///
/// Trajectories with fewer than three points are returned unchanged.
///
/// # Panics
///
/// Panics if `tolerance_m` is negative.
pub fn simplify_rdp(trajectory: &Trajectory, tolerance_m: f64) -> Trajectory {
    assert!(tolerance_m >= 0.0, "tolerance must be non-negative");
    let pts = trajectory.points();
    if pts.len() < 3 {
        return trajectory.clone();
    }
    let mut keep = vec![false; pts.len()];
    keep[0] = true;
    keep[pts.len() - 1] = true;
    // Iterative stack instead of recursion: trajectories can be long.
    let mut stack = vec![(0usize, pts.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (mut max_d, mut max_i) = (0.0f64, lo + 1);
        for (i, &p) in pts.iter().enumerate().take(hi).skip(lo + 1) {
            let d = point_to_chord_meters(p, pts[lo], pts[hi]);
            if d > max_d {
                max_d = d;
                max_i = i;
            }
        }
        if max_d > tolerance_m {
            keep[max_i] = true;
            stack.push((lo, max_i));
            stack.push((max_i, hi));
        }
    }
    pts.iter()
        .zip(&keep)
        .filter_map(|(&p, &k)| k.then_some(p))
        .collect()
}

/// Resamples a trajectory at a fixed step along its segments, always
/// keeping the first and last points. The inverse operation of
/// simplification: a simplified polyline must be re-densified before
/// fingerprinting, since normalization maps *points*, not segments.
///
/// Trajectories with fewer than two points are returned unchanged.
///
/// # Panics
///
/// Panics if `step_m` is not strictly positive.
pub fn resample(trajectory: &Trajectory, step_m: f64) -> Trajectory {
    assert!(step_m > 0.0, "resampling step must be positive");
    let pts = trajectory.points();
    if pts.len() < 2 {
        return trajectory.clone();
    }
    let mut out = Vec::with_capacity(pts.len() * 2);
    let mut until_next = 0.0;
    for w in pts.windows(2) {
        let seg = w[0].haversine_distance(w[1]);
        if seg == 0.0 {
            continue;
        }
        let mut offset = until_next;
        while offset < seg {
            out.push(w[0].lerp(w[1], offset / seg));
            offset += step_m;
        }
        until_next = offset - seg;
    }
    out.push(pts[pts.len() - 1]);
    Trajectory::new(out)
}

/// Approximate distance from `p` to the chord `a`–`b`, in meters, using a
/// local equirectangular projection (excellent at segment scale).
fn point_to_chord_meters(p: Point, a: Point, b: Point) -> f64 {
    const M: f64 = 111_195.0;
    let cos_lat = a.lat().to_radians().cos();
    let (ax, ay) = (a.lon() * M * cos_lat, a.lat() * M);
    let (bx, by) = (b.lon() * M * cos_lat, b.lat() * M);
    let (px, py) = (p.lon() * M * cos_lat, p.lat() * M);
    let (dx, dy) = (bx - ax, by - ay);
    let len2 = dx * dx + dy * dy;
    if len2 == 0.0 {
        return ((px - ax).powi(2) + (py - ay).powi(2)).sqrt();
    }
    let t = (((px - ax) * dx + (py - ay) * dy) / len2).clamp(0.0, 1.0);
    let (cx, cy) = (ax + t * dx, ay + t * dy);
    ((px - cx).powi(2) + (py - cy).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(lat: f64, lon: f64) -> Point {
        Point::new(lat, lon).unwrap()
    }

    #[test]
    fn straight_line_collapses_to_endpoints() {
        let t: Trajectory = (0..50).map(|i| p(0.0, i as f64 * 0.001)).collect();
        let s = simplify_rdp(&t, 1.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.points()[0], t.points()[0]);
        assert_eq!(s.points()[1], t.points()[49]);
    }

    #[test]
    fn corners_are_preserved() {
        // An L-shape: the corner survives any tolerance below its offset.
        let mut pts: Vec<Point> = (0..20).map(|i| p(0.0, i as f64 * 0.001)).collect();
        pts.extend((1..20).map(|i| p(i as f64 * 0.001, 0.019)));
        let t = Trajectory::new(pts);
        let s = simplify_rdp(&t, 10.0);
        assert_eq!(s.len(), 3, "endpoints + the corner");
        let corner = s.points()[1];
        assert!(corner.haversine_distance(p(0.0, 0.019)) < 1.0);
    }

    #[test]
    fn short_inputs_unchanged() {
        for n in 0..3 {
            let t: Trajectory = (0..n).map(|i| p(0.0, i as f64 * 0.01)).collect();
            assert_eq!(simplify_rdp(&t, 5.0), t);
        }
    }

    #[test]
    fn zero_tolerance_keeps_geometry_points() {
        // With zero tolerance only exactly-collinear points are dropped.
        let t = Trajectory::new(vec![
            p(0.0, 0.0),
            p(0.001, 0.001),
            p(0.0, 0.002),
            p(0.001, 0.003),
        ]);
        let s = simplify_rdp(&t, 0.0);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn resample_spacing_and_endpoints() {
        let t: Trajectory = vec![p(0.0, 0.0), p(0.0, 0.01)].into_iter().collect();
        let r = resample(&t, 100.0);
        assert!(r.len() > 10);
        assert_eq!(r.points().first(), t.points().first());
        assert_eq!(r.points().last(), t.points().last());
        for w in r.points().windows(2) {
            assert!(w[0].haversine_distance(w[1]) <= 101.0);
        }
        // Short inputs unchanged.
        let single: Trajectory = vec![p(1.0, 1.0)].into_iter().collect();
        assert_eq!(resample(&single, 10.0), single);
    }

    #[test]
    fn simplify_then_resample_roundtrip_stays_close() {
        // Zig-zag path: simplify, re-densify, and check every original
        // point is near the reconstruction.
        let t: Trajectory = (0..40)
            .map(|i| p(if i % 2 == 0 { 0.0 } else { 0.0003 }, i as f64 * 0.001))
            .collect();
        let s = simplify_rdp(&t, 50.0);
        let r = resample(&s, 30.0);
        for &q in t.points() {
            let d = r
                .iter()
                .map(|c| q.haversine_distance(c))
                .fold(f64::INFINITY, f64::min);
            assert!(d < 80.0, "point {q} is {d} m from the reconstruction");
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_resample_step_panics() {
        let t: Trajectory = (0..3).map(|i| p(0.0, i as f64 * 0.01)).collect();
        let _ = resample(&t, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_tolerance_panics() {
        let t: Trajectory = (0..3).map(|i| p(0.0, i as f64 * 0.01)).collect();
        let _ = simplify_rdp(&t, -1.0);
    }

    proptest! {
        #[test]
        fn prop_simplified_error_is_bounded(
            coords in proptest::collection::vec((-0.2f64..0.2, -0.2f64..0.2), 3..40),
            tol in 1.0f64..2_000.0,
        ) {
            let t: Trajectory = coords.iter().map(|&(la, lo)| p(la, lo)).collect();
            let s = simplify_rdp(&t, tol);
            // Endpoints preserved and size never grows.
            prop_assert_eq!(s.points().first(), t.points().first());
            prop_assert_eq!(s.points().last(), t.points().last());
            prop_assert!(s.len() <= t.len());
            // Every dropped point is within tolerance of the simplified
            // polyline (the RDP guarantee, checked against all segments).
            for &q in t.points() {
                let d = s
                    .points()
                    .windows(2)
                    .map(|w| point_to_chord_meters(q, w[0], w[1]))
                    .fold(f64::INFINITY, f64::min);
                prop_assert!(d <= tol + 1e-6, "point {q} at {d} m > {tol} m");
            }
        }

        #[test]
        fn prop_larger_tolerance_keeps_fewer_points(
            coords in proptest::collection::vec((-0.1f64..0.1, -0.1f64..0.1), 3..30),
        ) {
            let t: Trajectory = coords.iter().map(|&(la, lo)| p(la, lo)).collect();
            let fine = simplify_rdp(&t, 10.0);
            let coarse = simplify_rdp(&t, 1_000.0);
            prop_assert!(coarse.len() <= fine.len());
        }
    }
}
