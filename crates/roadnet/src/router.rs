//! Shortest-path routing on a [`RoadNetwork`].
//!
//! This is the substrate that replaces the GraphHopper library (the paper's
//! ref \[16\]): routes between random endpoints become the ground-truth paths
//! from which the synthetic trajectory dataset is sampled, using the route
//! duration for the speed of the moving entity.

use geodabs_geo::Point;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{NodeId, RoadNetError, RoadNetwork};

/// What a shortest path minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Metric {
    /// Minimize free-flow travel time (the GraphHopper default).
    #[default]
    TravelTime,
    /// Minimize geometric length.
    Distance,
}

/// A path through the road network with its geometry and cost summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    nodes: Vec<NodeId>,
    points: Vec<Point>,
    length_m: f64,
    duration_s: f64,
}

impl Route {
    /// The node sequence, starting at the origin.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The node locations, aligned with [`Route::nodes`].
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Total geometric length in meters.
    pub fn length_meters(&self) -> f64 {
        self.length_m
    }

    /// Total free-flow travel time in seconds.
    pub fn duration_seconds(&self) -> f64 {
        self.duration_s
    }

    /// Average speed over the route in meters per second.
    ///
    /// Returns `0.0` for a zero-duration (single-node) route.
    pub fn average_speed_mps(&self) -> f64 {
        if self.duration_s > 0.0 {
            self.length_m / self.duration_s
        } else {
            0.0
        }
    }

    /// A route in the opposite direction over the same nodes.
    ///
    /// The synthetic dataset generator uses this for the return-path
    /// trajectories that make the geohash baseline collapse to 0.5
    /// precision in Figure 12. Length and duration are kept, which assumes
    /// roughly symmetric roads.
    pub fn reversed(&self) -> Route {
        Route {
            nodes: self.nodes.iter().rev().copied().collect(),
            points: self.points.iter().rev().copied().collect(),
            length_m: self.length_m,
            duration_s: self.duration_s,
        }
    }
}

#[derive(Debug)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.node == other.node
    }
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on cost.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest path by free-flow travel time (Dijkstra).
///
/// # Errors
///
/// Returns [`RoadNetError::UnknownNode`] for foreign ids and
/// [`RoadNetError::NoPath`] if `to` is unreachable from `from`.
pub fn shortest_path(net: &RoadNetwork, from: NodeId, to: NodeId) -> Result<Route, RoadNetError> {
    shortest_path_with(net, from, to, Metric::TravelTime)
}

/// Shortest path under the chosen [`Metric`] (Dijkstra).
///
/// # Errors
///
/// Same as [`shortest_path`].
pub fn shortest_path_with(
    net: &RoadNetwork,
    from: NodeId,
    to: NodeId,
    metric: Metric,
) -> Result<Route, RoadNetError> {
    run_search(net, from, to, metric, |_| 0.0)
}

/// Shortest path by travel time using A* with the admissible
/// haversine-over-max-speed heuristic.
///
/// Produces the same routes as [`shortest_path`] but explores fewer nodes
/// on large networks.
///
/// # Errors
///
/// Same as [`shortest_path`].
pub fn astar(net: &RoadNetwork, from: NodeId, to: NodeId) -> Result<Route, RoadNetError> {
    let goal = net.point(to)?;
    let max_speed = net
        .node_ids()
        .flat_map(|n| net.edges(n).into_iter().flatten())
        .map(|e| e.speed_mps())
        .fold(f64::EPSILON, f64::max);
    run_search(net, from, to, Metric::TravelTime, move |p| {
        p.haversine_distance(goal) / max_speed
    })
}

fn run_search(
    net: &RoadNetwork,
    from: NodeId,
    to: NodeId,
    metric: Metric,
    heuristic: impl Fn(Point) -> f64,
) -> Result<Route, RoadNetError> {
    net.point(from)?;
    net.point(to)?;
    let n = net.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[from.index()] = 0.0;
    heap.push(HeapEntry {
        cost: heuristic(net.point(from)?),
        node: from,
    });
    while let Some(HeapEntry { node, .. }) = heap.pop() {
        if settled[node.index()] {
            continue;
        }
        settled[node.index()] = true;
        if node == to {
            break;
        }
        let base = dist[node.index()];
        for edge in net.edges(node)? {
            let weight = match metric {
                Metric::TravelTime => edge.duration_seconds(),
                Metric::Distance => edge.length_meters(),
            };
            let next = base + weight;
            let t = edge.to();
            if next < dist[t.index()] {
                dist[t.index()] = next;
                prev[t.index()] = Some(node);
                heap.push(HeapEntry {
                    cost: next + heuristic(net.point(t)?),
                    node: t,
                });
            }
        }
    }
    if !settled[to.index()] && from != to {
        return Err(RoadNetError::NoPath(from, to));
    }
    // Reconstruct the node sequence.
    let mut nodes = vec![to];
    let mut cur = to;
    while let Some(p) = prev[cur.index()] {
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    build_route(net, nodes)
}

/// Assembles a [`Route`] from an explicit node sequence, summing the actual
/// edge lengths and durations (each consecutive pair must be connected).
///
/// # Errors
///
/// Returns [`RoadNetError::UnknownNode`] for foreign ids and
/// [`RoadNetError::NoPath`] if a consecutive pair has no connecting edge.
pub fn build_route(net: &RoadNetwork, nodes: Vec<NodeId>) -> Result<Route, RoadNetError> {
    if nodes.is_empty() {
        return Err(RoadNetError::EmptyNetwork);
    }
    let mut points = Vec::with_capacity(nodes.len());
    for &n in &nodes {
        points.push(net.point(n)?);
    }
    let mut length_m = 0.0;
    let mut duration_s = 0.0;
    for w in nodes.windows(2) {
        let edge = net
            .edges(w[0])?
            .iter()
            .find(|e| e.to() == w[1])
            .ok_or(RoadNetError::NoPath(w[0], w[1]))?;
        length_m += edge.length_meters();
        duration_s += edge.duration_seconds();
    }
    Ok(Route {
        nodes,
        points,
        length_m,
        duration_s,
    })
}

/// Bounded single-source Dijkstra by geometric distance.
///
/// Returns, for every node reachable within `cutoff_m` meters, its network
/// distance from `from`. Used by map matching to score transitions between
/// candidate nodes of consecutive trajectory points.
///
/// # Errors
///
/// Returns [`RoadNetError::UnknownNode`] if `from` is foreign.
pub fn distances_within(
    net: &RoadNetwork,
    from: NodeId,
    cutoff_m: f64,
) -> Result<Vec<(NodeId, f64)>, RoadNetError> {
    net.point(from)?;
    let n = net.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    let mut out = Vec::new();
    dist[from.index()] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: from,
    });
    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if settled[node.index()] {
            continue;
        }
        settled[node.index()] = true;
        out.push((node, cost));
        for edge in net.edges(node)? {
            let next = cost + edge.length_meters();
            let t = edge.to();
            if next <= cutoff_m && next < dist[t.index()] {
                dist[t.index()] = next;
                heap.push(HeapEntry {
                    cost: next,
                    node: t,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> Point {
        Point::new(lat, lon).unwrap()
    }

    /// A 1D chain a - b - c - d plus a slow shortcut a -> d.
    fn chain() -> (RoadNetwork, Vec<NodeId>) {
        let mut net = RoadNetwork::new();
        let ids: Vec<NodeId> = (0..4)
            .map(|i| net.add_node(p(0.0, i as f64 * 0.01)))
            .collect();
        for w in ids.windows(2) {
            net.add_edge_bidirectional(w[0], w[1], 20.0).unwrap();
        }
        // Direct but slow edge: same distance, quarter the speed.
        net.add_edge(ids[0], ids[3], 5.0).unwrap();
        (net, ids)
    }

    #[test]
    fn dijkstra_prefers_fast_multi_hop_path() {
        let (net, ids) = chain();
        let r = shortest_path(&net, ids[0], ids[3]).unwrap();
        assert_eq!(r.nodes(), &[ids[0], ids[1], ids[2], ids[3]]);
        assert!((r.length_meters() - 3.0 * 1_112.0).abs() < 20.0);
        assert!((r.duration_seconds() - r.length_meters() / 20.0).abs() < 1e-9);
        assert!((r.average_speed_mps() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn distance_metric_prefers_direct_edge() {
        let (net, ids) = chain();
        let r = shortest_path_with(&net, ids[0], ids[3], Metric::Distance).unwrap();
        assert_eq!(r.nodes(), &[ids[0], ids[3]]);
    }

    #[test]
    fn astar_matches_dijkstra() {
        let (net, ids) = chain();
        let d = shortest_path(&net, ids[0], ids[3]).unwrap();
        let a = astar(&net, ids[0], ids[3]).unwrap();
        assert_eq!(d.nodes(), a.nodes());
        assert!((d.duration_seconds() - a.duration_seconds()).abs() < 1e-9);
    }

    #[test]
    fn route_to_self_is_single_node() {
        let (net, ids) = chain();
        let r = shortest_path(&net, ids[1], ids[1]).unwrap();
        assert_eq!(r.nodes(), &[ids[1]]);
        assert_eq!(r.length_meters(), 0.0);
        assert_eq!(r.average_speed_mps(), 0.0);
    }

    #[test]
    fn unreachable_node_errors() {
        let mut net = RoadNetwork::new();
        let a = net.add_node(p(0.0, 0.0));
        let b = net.add_node(p(0.0, 1.0));
        assert_eq!(shortest_path(&net, a, b), Err(RoadNetError::NoPath(a, b)));
    }

    #[test]
    fn directed_edges_are_one_way() {
        let mut net = RoadNetwork::new();
        let a = net.add_node(p(0.0, 0.0));
        let b = net.add_node(p(0.0, 0.01));
        net.add_edge(a, b, 10.0).unwrap();
        assert!(shortest_path(&net, a, b).is_ok());
        assert_eq!(shortest_path(&net, b, a), Err(RoadNetError::NoPath(b, a)));
    }

    #[test]
    fn reversed_route_flips_geometry() {
        let (net, ids) = chain();
        let r = shortest_path(&net, ids[0], ids[3]).unwrap();
        let rev = r.reversed();
        assert_eq!(rev.nodes().first(), r.nodes().last());
        assert_eq!(rev.nodes().last(), r.nodes().first());
        assert_eq!(rev.length_meters(), r.length_meters());
        assert_eq!(rev.points().first(), r.points().last());
    }

    #[test]
    fn build_route_validates_connectivity() {
        let (net, ids) = chain();
        assert!(build_route(&net, vec![ids[0], ids[1]]).is_ok());
        assert_eq!(
            build_route(&net, vec![ids[1], ids[3]]),
            Err(RoadNetError::NoPath(ids[1], ids[3]))
        );
        assert!(build_route(&net, vec![]).is_err());
    }

    #[test]
    fn distances_within_respects_cutoff() {
        let (net, ids) = chain();
        // ~1112 m per hop; cutoff at 1.5 hops reaches only the neighbor.
        let d = distances_within(&net, ids[0], 1_700.0).unwrap();
        let reached: Vec<NodeId> = d.iter().map(|&(n, _)| n).collect();
        assert!(reached.contains(&ids[0]));
        assert!(reached.contains(&ids[1]));
        assert!(!reached.contains(&ids[2]));
        // Distances are sorted by settle order (non-decreasing).
        assert!(d.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn distances_within_covers_whole_component_with_large_cutoff() {
        let (net, ids) = chain();
        let d = distances_within(&net, ids[0], f64::INFINITY).unwrap();
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn foreign_ids_error() {
        let (net, _) = chain();
        let ghost = NodeId::new(1000);
        assert!(shortest_path(&net, ghost, ghost).is_err());
        assert!(distances_within(&net, ghost, 10.0).is_err());
    }
}
