use geodabs_geo::Point;

use crate::{NodeId, RoadNetwork};

/// A uniform-grid spatial index over the nodes of a [`RoadNetwork`].
///
/// Supports the two queries map matching and route generation need:
/// nearest node to a point, and all nodes within a radius. Cells are sized
/// in degrees from a target cell edge in meters at the network's latitude.
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    cell_deg: f64,
    min_lat: f64,
    min_lon: f64,
    cols: usize,
    rows: usize,
    /// `cells[row * cols + col]` holds the nodes in that cell.
    cells: Vec<Vec<NodeId>>,
    points: Vec<Point>,
}

/// Roughly one degree of latitude in meters.
const METERS_PER_DEGREE: f64 = 111_195.0;

impl SpatialIndex {
    /// Builds an index over every node of the network with the given cell
    /// edge length (meters). A cell edge around 200–500 m works well for
    /// city-scale networks.
    ///
    /// Returns an index with a single empty cell for an empty network.
    pub fn build(network: &RoadNetwork, cell_meters: f64) -> SpatialIndex {
        assert!(cell_meters > 0.0, "cell size must be positive");
        let points: Vec<Point> = network.node_points().collect();
        let cell_deg = cell_meters / METERS_PER_DEGREE;
        let (min_lat, min_lon, max_lat, max_lon) = match network.bounds() {
            Ok(bb) => (bb.min_lat(), bb.min_lon(), bb.max_lat(), bb.max_lon()),
            Err(_) => (0.0, 0.0, 0.0, 0.0),
        };
        let cols = (((max_lon - min_lon) / cell_deg).floor() as usize + 1).max(1);
        let rows = (((max_lat - min_lat) / cell_deg).floor() as usize + 1).max(1);
        let mut cells = vec![Vec::new(); cols * rows];
        for (i, p) in points.iter().enumerate() {
            let col = (((p.lon() - min_lon) / cell_deg) as usize).min(cols - 1);
            let row = (((p.lat() - min_lat) / cell_deg) as usize).min(rows - 1);
            cells[row * cols + col].push(NodeId::new(i as u32));
        }
        SpatialIndex {
            cell_deg,
            min_lat,
            min_lon,
            cols,
            rows,
            cells,
            points,
        }
    }

    /// The node closest to `query`, or `None` for an empty network.
    pub fn nearest(&self, query: Point) -> Option<NodeId> {
        if self.points.is_empty() {
            return None;
        }
        // Expand rings of cells around the query until a candidate is
        // found, then keep expanding until the ring distance provably
        // exceeds the best candidate distance (cells are anisotropic in
        // meters, so the bound uses the smaller of the two cell extents).
        let (qrow, qcol) = self.cell_of(query);
        let cos_lat = query.lat().to_radians().cos().max(0.01);
        let min_cell_extent_m = self.cell_deg * METERS_PER_DEGREE * cos_lat;
        let mut best: Option<(NodeId, f64)> = None;
        let max_ring = self.cols.max(self.rows);
        for ring in 0..=max_ring {
            if let Some((_, bd)) = best {
                // A cell at Chebyshev ring `r` is at least `(r - 1) *
                // min_cell_extent_m` meters away from the query.
                if (ring as f64 - 1.0) * min_cell_extent_m > bd {
                    break;
                }
            }
            for (row, col) in self.ring_cells(qrow, qcol, ring) {
                for &node in &self.cells[row * self.cols + col] {
                    let d = query.haversine_distance(self.points[node.index()]);
                    if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                        best = Some((node, d));
                    }
                }
            }
        }
        best.map(|(n, _)| n)
    }

    /// All nodes within `radius_m` meters of `query`, sorted by distance.
    pub fn within(&self, query: Point, radius_m: f64) -> Vec<(NodeId, f64)> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let (qrow, qcol) = self.cell_of(query);
        // One degree of longitude shrinks by cos(latitude); widen the column
        // window accordingly so border nodes are not missed.
        let cos_lat = query.lat().to_radians().cos().max(0.01);
        let row_span = (radius_m / METERS_PER_DEGREE / self.cell_deg).ceil() as usize + 1;
        let col_span =
            (radius_m / (METERS_PER_DEGREE * cos_lat) / self.cell_deg).ceil() as usize + 1;
        let mut out = Vec::new();
        let row_lo = qrow.saturating_sub(row_span);
        let row_hi = (qrow + row_span).min(self.rows - 1);
        let col_lo = qcol.saturating_sub(col_span);
        let col_hi = (qcol + col_span).min(self.cols - 1);
        for row in row_lo..=row_hi {
            for col in col_lo..=col_hi {
                for &node in &self.cells[row * self.cols + col] {
                    let d = query.haversine_distance(self.points[node.index()]);
                    if d <= radius_m {
                        out.push((node, d));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.1.total_cmp(&b.1));
        out
    }

    fn cell_of(&self, p: Point) -> (usize, usize) {
        let col = ((p.lon() - self.min_lon) / self.cell_deg).max(0.0) as usize;
        let row = ((p.lat() - self.min_lat) / self.cell_deg).max(0.0) as usize;
        (row.min(self.rows - 1), col.min(self.cols - 1))
    }

    /// The cells at Chebyshev distance `ring` from `(qrow, qcol)`, clipped
    /// to the grid.
    fn ring_cells(
        &self,
        qrow: usize,
        qcol: usize,
        ring: usize,
    ) -> impl Iterator<Item = (usize, usize)> + '_ {
        let rows = self.rows as isize;
        let cols = self.cols as isize;
        let (qr, qc) = (qrow as isize, qcol as isize);
        let r = ring as isize;
        let candidates: Vec<(isize, isize)> = if ring == 0 {
            vec![(qr, qc)]
        } else {
            let mut v = Vec::with_capacity(8 * ring);
            for dc in -r..=r {
                v.push((qr - r, qc + dc));
                v.push((qr + r, qc + dc));
            }
            for dr in (-r + 1)..r {
                v.push((qr + dr, qc - r));
                v.push((qr + dr, qc + r));
            }
            v
        };
        candidates
            .into_iter()
            .filter(move |&(row, col)| row >= 0 && row < rows && col >= 0 && col < cols)
            .map(|(row, col)| (row as usize, col as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(lat: f64, lon: f64) -> Point {
        Point::new(lat, lon).unwrap()
    }

    fn small_net() -> RoadNetwork {
        let mut net = RoadNetwork::new();
        for i in 0..10 {
            for j in 0..10 {
                net.add_node(p(51.0 + i as f64 * 0.01, 0.0 + j as f64 * 0.01));
            }
        }
        net
    }

    #[test]
    fn nearest_on_empty_network_is_none() {
        let idx = SpatialIndex::build(&RoadNetwork::new(), 300.0);
        assert!(idx.nearest(p(0.0, 0.0)).is_none());
        assert!(idx.within(p(0.0, 0.0), 1_000.0).is_empty());
    }

    #[test]
    fn nearest_finds_exact_node() {
        let net = small_net();
        let idx = SpatialIndex::build(&net, 300.0);
        for node in net.node_ids() {
            let q = net.point(node).unwrap();
            assert_eq!(idx.nearest(q), Some(node));
        }
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let net = small_net();
        let idx = SpatialIndex::build(&net, 300.0);
        let queries = [
            p(51.004, 0.004),
            p(51.05, 0.05),
            p(50.9, -0.1),
            p(51.2, 0.2),
        ];
        for q in queries {
            let expected = net
                .node_ids()
                .min_by(|&a, &b| {
                    q.haversine_distance(net.point(a).unwrap())
                        .total_cmp(&q.haversine_distance(net.point(b).unwrap()))
                })
                .unwrap();
            let got = idx.nearest(q).unwrap();
            let de = q.haversine_distance(net.point(expected).unwrap());
            let dg = q.haversine_distance(net.point(got).unwrap());
            assert!((de - dg).abs() < 1e-9, "query {q}: {de} vs {dg}");
        }
    }

    #[test]
    fn within_radius_is_complete_and_sorted() {
        let net = small_net();
        let idx = SpatialIndex::build(&net, 300.0);
        let q = p(51.045, 0.045);
        let radius = 2_000.0;
        let got = idx.within(q, radius);
        let expected: usize = net
            .node_ids()
            .filter(|&n| q.haversine_distance(net.point(n).unwrap()) <= radius)
            .count();
        assert_eq!(got.len(), expected);
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
        for (n, d) in &got {
            assert!((q.haversine_distance(net.point(*n).unwrap()) - d).abs() < 1e-9);
        }
    }

    #[test]
    fn within_zero_radius_only_exact() {
        let net = small_net();
        let idx = SpatialIndex::build(&net, 300.0);
        let q = net.point(NodeId::new(0)).unwrap();
        let got = idx.within(q, 0.0);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, NodeId::new(0));
    }

    proptest! {
        #[test]
        fn prop_nearest_agrees_with_scan(
            qlat in 50.9f64..51.2, qlon in -0.1f64..0.2, cell in 100.0f64..2_000.0
        ) {
            let net = small_net();
            let idx = SpatialIndex::build(&net, cell);
            let q = p(qlat, qlon);
            let got = idx.nearest(q).unwrap();
            let best = net
                .node_ids()
                .map(|n| q.haversine_distance(net.point(n).unwrap()))
                .fold(f64::INFINITY, f64::min);
            let dg = q.haversine_distance(net.point(got).unwrap());
            prop_assert!((dg - best).abs() < 1e-9, "got {dg}, best {best}");
        }

        #[test]
        fn prop_within_matches_scan(
            qlat in 50.9f64..51.2, qlon in -0.1f64..0.2, radius in 10.0f64..5_000.0
        ) {
            let net = small_net();
            let idx = SpatialIndex::build(&net, 400.0);
            let q = p(qlat, qlon);
            let got: Vec<_> = idx.within(q, radius).into_iter().map(|(n, _)| n).collect();
            let mut expected: Vec<_> = net
                .node_ids()
                .filter(|&n| q.haversine_distance(net.point(n).unwrap()) <= radius)
                .collect();
            let mut got_sorted = got.clone();
            got_sorted.sort();
            expected.sort();
            prop_assert_eq!(got_sorted, expected);
        }
    }
}
