//! Synthetic road-network generators.
//!
//! The paper evaluates on routes constrained to the real London road
//! network. Since OpenStreetMap extracts are not available here, these
//! generators produce dense, irregular, fully connected networks with the
//! properties the experiments rely on: many partially overlapping paths,
//! realistic edge lengths (hundreds of meters) and heterogeneous speeds.

use geodabs_geo::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{NodeId, RoadNetwork};

/// Configuration of the perturbed-grid generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GridConfig {
    /// Center of the generated region.
    pub center: Point,
    /// Number of node rows.
    pub rows: usize,
    /// Number of node columns.
    pub cols: usize,
    /// Nominal distance between adjacent nodes, in meters.
    pub spacing_m: f64,
    /// Maximum random displacement applied to each node, in meters.
    pub jitter_m: f64,
    /// Probability of adding a diagonal shortcut in a grid cell.
    pub diagonal_prob: f64,
    /// Edge free-flow speeds are drawn uniformly from this range (m/s).
    pub speed_range_mps: (f64, f64),
}

impl Default for GridConfig {
    /// A ~10 km x 10 km network centered on London, echoing the paper's
    /// "300 square kilometres located around the center of London" at a
    /// size that keeps tests fast. Benches scale `rows`/`cols` up.
    fn default() -> GridConfig {
        GridConfig {
            center: Point::new(51.5074, -0.1278).expect("london is a valid point"),
            rows: 20,
            cols: 20,
            spacing_m: 500.0,
            jitter_m: 80.0,
            diagonal_prob: 0.15,
            speed_range_mps: (8.0, 20.0),
        }
    }
}

impl GridConfig {
    /// A grid sized to cover approximately `area_km2` square kilometers at
    /// the default spacing, as in the paper's evaluation region.
    pub fn with_area_km2(area_km2: f64) -> GridConfig {
        let cfg = GridConfig::default();
        let side_m = (area_km2 * 1e6).sqrt();
        let n = (side_m / cfg.spacing_m).round() as usize + 1;
        GridConfig {
            rows: n.max(2),
            cols: n.max(2),
            ..cfg
        }
    }
}

/// Generates a perturbed grid network. Always strongly connected.
///
/// The same `seed` always produces the same network.
pub fn grid_network(cfg: &GridConfig, seed: u64) -> RoadNetwork {
    assert!(
        cfg.rows >= 2 && cfg.cols >= 2,
        "grid needs at least 2x2 nodes"
    );
    let (lo, hi) = cfg.speed_range_mps;
    assert!(lo > 0.0 && hi >= lo, "invalid speed range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = RoadNetwork::new();
    let height = (cfg.rows - 1) as f64 * cfg.spacing_m;
    let width = (cfg.cols - 1) as f64 * cfg.spacing_m;
    // South-west corner of the grid.
    let origin = cfg
        .center
        .destination(180.0, height / 2.0)
        .destination(270.0, width / 2.0);
    let mut ids = Vec::with_capacity(cfg.rows * cfg.cols);
    for r in 0..cfg.rows {
        for c in 0..cfg.cols {
            let base = origin
                .destination(0.0, r as f64 * cfg.spacing_m)
                .destination(90.0, c as f64 * cfg.spacing_m);
            let angle = rng.random_range(0.0..360.0);
            let dist = rng.random_range(0.0..=cfg.jitter_m);
            ids.push(net.add_node(base.destination(angle, dist)));
        }
    }
    let at = |r: usize, c: usize| ids[r * cfg.cols + c];
    let speed = |rng: &mut StdRng| rng.random_range(lo..=hi);
    for r in 0..cfg.rows {
        for c in 0..cfg.cols {
            if c + 1 < cfg.cols {
                let s = speed(&mut rng);
                net.add_edge_bidirectional(at(r, c), at(r, c + 1), s)
                    .expect("grid nodes exist");
            }
            if r + 1 < cfg.rows {
                let s = speed(&mut rng);
                net.add_edge_bidirectional(at(r, c), at(r + 1, c), s)
                    .expect("grid nodes exist");
            }
            if r + 1 < cfg.rows && c + 1 < cfg.cols && rng.random_bool(cfg.diagonal_prob) {
                let s = speed(&mut rng);
                // Randomly pick one of the two diagonals.
                if rng.random_bool(0.5) {
                    net.add_edge_bidirectional(at(r, c), at(r + 1, c + 1), s)
                        .expect("grid nodes exist");
                } else {
                    net.add_edge_bidirectional(at(r, c + 1), at(r + 1, c), s)
                        .expect("grid nodes exist");
                }
            }
        }
    }
    net
}

/// Configuration of the radial ("London-like") generator: concentric ring
/// roads crossed by radial arterials.
#[derive(Debug, Clone, PartialEq)]
pub struct RadialConfig {
    /// Center of the network.
    pub center: Point,
    /// Number of concentric rings.
    pub rings: usize,
    /// Number of radial spokes.
    pub spokes: usize,
    /// Distance between consecutive rings, in meters.
    pub ring_spacing_m: f64,
    /// Maximum random displacement applied to each node, in meters.
    pub jitter_m: f64,
    /// Speed on ring roads (m/s).
    pub ring_speed_mps: f64,
    /// Speed on radial arterials (m/s); usually faster.
    pub spoke_speed_mps: f64,
}

impl Default for RadialConfig {
    fn default() -> RadialConfig {
        RadialConfig {
            center: Point::new(51.5074, -0.1278).expect("london is a valid point"),
            rings: 8,
            spokes: 16,
            ring_spacing_m: 600.0,
            jitter_m: 60.0,
            ring_speed_mps: 9.0,
            spoke_speed_mps: 16.0,
        }
    }
}

/// Generates a radial ring-and-spoke network. Always strongly connected.
pub fn radial_network(cfg: &RadialConfig, seed: u64) -> RoadNetwork {
    assert!(
        cfg.rings >= 1 && cfg.spokes >= 3,
        "need >=1 ring and >=3 spokes"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = RoadNetwork::new();
    let hub = net.add_node(cfg.center);
    // ids[ring][spoke]
    let mut ids: Vec<Vec<NodeId>> = Vec::with_capacity(cfg.rings);
    for ring in 1..=cfg.rings {
        let mut ring_ids = Vec::with_capacity(cfg.spokes);
        for spoke in 0..cfg.spokes {
            let bearing = 360.0 * spoke as f64 / cfg.spokes as f64;
            let base = cfg
                .center
                .destination(bearing, ring as f64 * cfg.ring_spacing_m);
            let angle = rng.random_range(0.0..360.0);
            let dist = rng.random_range(0.0..=cfg.jitter_m);
            ring_ids.push(net.add_node(base.destination(angle, dist)));
        }
        ids.push(ring_ids);
    }
    // Ring roads: connect consecutive spokes on the same ring.
    for ring_ids in &ids {
        for s in 0..cfg.spokes {
            let next = (s + 1) % cfg.spokes;
            net.add_edge_bidirectional(ring_ids[s], ring_ids[next], cfg.ring_speed_mps)
                .expect("ring nodes exist");
        }
    }
    // Spokes: hub to first ring, then ring to ring.
    for (s, &first_ring_node) in ids[0].iter().enumerate() {
        net.add_edge_bidirectional(hub, first_ring_node, cfg.spoke_speed_mps)
            .expect("spoke nodes exist");
        for ring in 1..cfg.rings {
            net.add_edge_bidirectional(ids[ring - 1][s], ids[ring][s], cfg.spoke_speed_mps)
                .expect("spoke nodes exist");
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::distances_within;

    #[test]
    fn grid_has_expected_size() {
        let cfg = GridConfig::default();
        let net = grid_network(&cfg, 1);
        assert_eq!(net.node_count(), cfg.rows * cfg.cols);
        // At least the lattice edges, in both directions.
        let lattice = 2 * (cfg.rows * (cfg.cols - 1) + cfg.cols * (cfg.rows - 1));
        assert!(net.edge_count() >= lattice);
    }

    #[test]
    fn grid_is_deterministic_per_seed() {
        let cfg = GridConfig::default();
        let a = grid_network(&cfg, 7);
        let b = grid_network(&cfg, 7);
        let c = grid_network(&cfg, 8);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        let pa: Vec<_> = a.node_points().collect();
        let pb: Vec<_> = b.node_points().collect();
        assert_eq!(pa, pb);
        let pc: Vec<_> = c.node_points().collect();
        assert_ne!(pa, pc);
    }

    #[test]
    fn grid_is_strongly_connected() {
        let net = grid_network(&GridConfig::default(), 3);
        let first = net.node_ids().next().unwrap();
        let reached = distances_within(&net, first, f64::INFINITY).unwrap();
        assert_eq!(reached.len(), net.node_count());
    }

    #[test]
    fn grid_covers_roughly_the_requested_area() {
        let cfg = GridConfig::with_area_km2(100.0);
        let net = grid_network(&cfg, 1);
        let bb = net.bounds().unwrap();
        let area_km2 = bb.width_meters() * bb.height_meters() / 1e6;
        assert!((60.0..180.0).contains(&area_km2), "area {area_km2}");
    }

    #[test]
    fn grid_edge_lengths_are_road_scale() {
        let cfg = GridConfig::default();
        let net = grid_network(&cfg, 5);
        for n in net.node_ids() {
            for e in net.edges(n).unwrap() {
                assert!(
                    (100.0..2_000.0).contains(&e.length_meters()),
                    "edge of {} m",
                    e.length_meters()
                );
                assert!(e.speed_mps() >= cfg.speed_range_mps.0);
                assert!(e.speed_mps() <= cfg.speed_range_mps.1);
            }
        }
    }

    #[test]
    fn radial_has_expected_size_and_connectivity() {
        let cfg = RadialConfig::default();
        let net = radial_network(&cfg, 11);
        assert_eq!(net.node_count(), 1 + cfg.rings * cfg.spokes);
        let hub = net.node_ids().next().unwrap();
        let reached = distances_within(&net, hub, f64::INFINITY).unwrap();
        assert_eq!(reached.len(), net.node_count());
    }

    #[test]
    fn radial_rings_grow_outward() {
        let cfg = RadialConfig {
            jitter_m: 0.0,
            ..RadialConfig::default()
        };
        let net = radial_network(&cfg, 2);
        let pts: Vec<_> = net.node_points().collect();
        let hub = pts[0];
        // First-ring node is closer to the hub than a last-ring node.
        let inner = hub.haversine_distance(pts[1]);
        let outer = hub.haversine_distance(pts[1 + (cfg.rings - 1) * cfg.spokes]);
        assert!(inner < outer);
        assert!((inner - cfg.ring_spacing_m).abs() < 1.0);
        assert!((outer - cfg.rings as f64 * cfg.ring_spacing_m).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn tiny_grid_panics() {
        let cfg = GridConfig {
            rows: 1,
            ..GridConfig::default()
        };
        let _ = grid_network(&cfg, 0);
    }
}
