//! Hidden-Markov-model map matching (Newson & Krumm, the paper's ref \[22\]).
//!
//! Map matching is the heavier of the two normalization methods of
//! Section V: each noisy trajectory point is associated with candidate road
//! nodes within a radius, and the Viterbi algorithm selects the most
//! probable node sequence, trading emission likelihood (GPS noise) against
//! transition likelihood (detour length), as in Goh et al. (ref \[12\]).

use geodabs_geo::Point;
use std::collections::HashMap;

use crate::router::distances_within;
use crate::{NodeId, RoadNetError, RoadNetwork, SpatialIndex};

/// Tuning parameters of the HMM matcher.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchConfig {
    /// Candidate search radius around each trajectory point, in meters.
    pub radius_m: f64,
    /// Standard deviation of the GPS noise model (emission), in meters.
    /// The paper's dataset adds 20 m of Gaussian noise.
    pub sigma_m: f64,
    /// Scale of the transition model: penalizes the absolute difference
    /// between network distance and great-circle distance, in meters.
    pub beta_m: f64,
    /// Transition search cutoff as a multiple of the great-circle distance
    /// between consecutive points (plus one radius of slack).
    pub max_route_factor: f64,
    /// Keep at most this many candidates per point (closest first).
    pub max_candidates: usize,
}

impl Default for MatchConfig {
    fn default() -> MatchConfig {
        MatchConfig {
            radius_m: 120.0,
            sigma_m: 20.0,
            beta_m: 60.0,
            max_route_factor: 4.0,
            max_candidates: 6,
        }
    }
}

/// Matches a point sequence onto the road network, returning the most
/// probable node path with consecutive duplicates removed.
///
/// Points with no candidate node within the radius are skipped; if a layer
/// is unreachable from the previous one within the cutoff, the chain is
/// restarted there (the standard practical treatment of HMM breaks).
///
/// # Errors
///
/// * [`RoadNetError::EmptyTrajectory`] if `points` is empty.
/// * [`RoadNetError::NoCandidates`] if *no* point has any candidate.
pub fn map_match(
    net: &RoadNetwork,
    index: &SpatialIndex,
    points: &[Point],
    cfg: &MatchConfig,
) -> Result<Vec<NodeId>, RoadNetError> {
    if points.is_empty() {
        return Err(RoadNetError::EmptyTrajectory);
    }
    // Build candidate layers; remember the original point of each layer.
    let mut layers: Vec<(Point, Vec<(NodeId, f64)>)> = Vec::new();
    for &p in points {
        let mut cands = index.within(p, cfg.radius_m);
        cands.truncate(cfg.max_candidates);
        if !cands.is_empty() {
            layers.push((p, cands));
        }
    }
    if layers.is_empty() {
        return Err(RoadNetError::NoCandidates { point_index: 0 });
    }

    // Viterbi. score[i][k] = best log-prob ending at candidate k of layer i.
    let emission = |d: f64| -(d * d) / (2.0 * cfg.sigma_m * cfg.sigma_m);
    let mut scores: Vec<Vec<f64>> = Vec::with_capacity(layers.len());
    let mut back: Vec<Vec<Option<usize>>> = Vec::with_capacity(layers.len());
    scores.push(layers[0].1.iter().map(|&(_, d)| emission(d)).collect());
    back.push(vec![None; layers[0].1.len()]);

    for i in 1..layers.len() {
        let (prev_point, prev_cands) = &layers[i - 1];
        let (cur_point, cur_cands) = &layers[i];
        let gc = prev_point.haversine_distance(*cur_point);
        let cutoff = gc * cfg.max_route_factor + 2.0 * cfg.radius_m;
        // Network distances from every previous candidate.
        let mut reach: Vec<HashMap<NodeId, f64>> = Vec::with_capacity(prev_cands.len());
        for &(u, _) in prev_cands.iter() {
            let dists = distances_within(net, u, cutoff)?;
            reach.push(dists.into_iter().collect());
        }
        let mut layer_scores = vec![f64::NEG_INFINITY; cur_cands.len()];
        let mut layer_back: Vec<Option<usize>> = vec![None; cur_cands.len()];
        for (k, &(v, emit_d)) in cur_cands.iter().enumerate() {
            let e = emission(emit_d);
            for (j, reach_j) in reach.iter().enumerate() {
                if let Some(&route_d) = reach_j.get(&v) {
                    let t = -(route_d - gc).abs() / cfg.beta_m;
                    let s = scores[i - 1][j] + t + e;
                    if s > layer_scores[k] {
                        layer_scores[k] = s;
                        layer_back[k] = Some(j);
                    }
                }
            }
        }
        if layer_scores.iter().all(|s| s.is_infinite()) {
            // HMM break: restart the chain at this layer.
            for (k, &(_, emit_d)) in cur_cands.iter().enumerate() {
                layer_scores[k] = emission(emit_d);
                layer_back[k] = None;
            }
        }
        scores.push(layer_scores);
        back.push(layer_back);
    }

    // Backtrack from the best final candidate, following back-pointers and
    // jumping over chain restarts (None back-pointer mid-sequence simply
    // continues with the best candidate of the previous layer).
    let mut path_rev: Vec<NodeId> = Vec::with_capacity(layers.len());
    let mut layer = layers.len() - 1;
    let mut k = best_index(&scores[layer]);
    loop {
        path_rev.push(layers[layer].1[k].0);
        match back[layer][k] {
            Some(j) => {
                layer -= 1;
                k = j;
            }
            None => {
                if layer == 0 {
                    break;
                }
                layer -= 1;
                k = best_index(&scores[layer]);
            }
        }
    }
    path_rev.reverse();
    path_rev.dedup();
    Ok(path_rev)
}

fn best_index(scores: &[f64]) -> usize {
    scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("layers are non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_network, GridConfig};
    use crate::router::shortest_path;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (RoadNetwork, SpatialIndex) {
        let net = grid_network(&GridConfig::default(), 42);
        let idx = SpatialIndex::build(&net, 300.0);
        (net, idx)
    }

    /// Samples points along a route every `step_m` meters with uniform
    /// noise of up to `noise_m` meters.
    fn sample_route(
        net: &RoadNetwork,
        nodes: &[NodeId],
        step_m: f64,
        noise_m: f64,
        seed: u64,
    ) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for w in nodes.windows(2) {
            let a = net.point(w[0]).unwrap();
            let b = net.point(w[1]).unwrap();
            let len = a.haversine_distance(b);
            let steps = (len / step_m).ceil() as usize;
            for s in 0..steps {
                let p = a.lerp(b, s as f64 / steps as f64);
                let angle = rng.random_range(0.0..360.0);
                let d = rng.random_range(0.0..=noise_m);
                out.push(p.destination(angle, d));
            }
        }
        out.push(net.point(*nodes.last().unwrap()).unwrap());
        out
    }

    #[test]
    fn empty_trajectory_errors() {
        let (net, idx) = setup();
        assert_eq!(
            map_match(&net, &idx, &[], &MatchConfig::default()),
            Err(RoadNetError::EmptyTrajectory)
        );
    }

    #[test]
    fn far_away_points_have_no_candidates() {
        let (net, idx) = setup();
        let sahara = Point::new(23.0, 13.0).unwrap();
        let err = map_match(&net, &idx, &[sahara], &MatchConfig::default());
        assert_eq!(err, Err(RoadNetError::NoCandidates { point_index: 0 }));
    }

    #[test]
    fn noiseless_points_on_nodes_match_exactly() {
        let (net, idx) = setup();
        let from = net.node_ids().next().unwrap();
        let to = net.node_ids().nth(150).unwrap();
        let route = shortest_path(&net, from, to).unwrap();
        let points: Vec<Point> = route.points().to_vec();
        let matched = map_match(&net, &idx, &points, &MatchConfig::default()).unwrap();
        assert_eq!(matched, route.nodes());
    }

    #[test]
    fn noisy_samples_recover_most_of_the_route() {
        let (net, idx) = setup();
        let from = net.node_ids().next().unwrap();
        let to = net.node_ids().nth(210).unwrap();
        let route = shortest_path(&net, from, to).unwrap();
        let points = sample_route(&net, route.nodes(), 60.0, 20.0, 7);
        let matched = map_match(&net, &idx, &points, &MatchConfig::default()).unwrap();
        // The matched path must hit a large fraction of the true nodes, in
        // order.
        let mut hits = 0usize;
        let mut it = matched.iter();
        for want in route.nodes() {
            if it.any(|got| got == want) {
                hits += 1;
            } else {
                // restart the scan for the remaining wants
                it = matched.iter();
            }
        }
        let frac = hits as f64 / route.nodes().len() as f64;
        assert!(frac >= 0.7, "recovered only {frac:.2} of the route");
    }

    #[test]
    fn matched_path_has_no_consecutive_duplicates() {
        let (net, idx) = setup();
        let from = net.node_ids().next().unwrap();
        let to = net.node_ids().nth(50).unwrap();
        let route = shortest_path(&net, from, to).unwrap();
        // Oversample heavily so that several samples map to the same node.
        let points = sample_route(&net, route.nodes(), 15.0, 5.0, 3);
        let matched = map_match(&net, &idx, &points, &MatchConfig::default()).unwrap();
        assert!(matched.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn two_similar_noisy_trajectories_converge() {
        // The whole purpose of normalization (Section V): two noisy
        // samplings of the same route must normalize to highly overlapping
        // node sequences.
        let (net, idx) = setup();
        let from = net.node_ids().nth(3).unwrap();
        let to = net.node_ids().nth(333).unwrap();
        let route = shortest_path(&net, from, to).unwrap();
        let cfg = MatchConfig::default();
        let a = map_match(
            &net,
            &idx,
            &sample_route(&net, route.nodes(), 50.0, 20.0, 1),
            &cfg,
        )
        .unwrap();
        let b = map_match(
            &net,
            &idx,
            &sample_route(&net, route.nodes(), 70.0, 20.0, 2),
            &cfg,
        )
        .unwrap();
        let sa: std::collections::HashSet<_> = a.iter().collect();
        let sb: std::collections::HashSet<_> = b.iter().collect();
        let inter = sa.intersection(&sb).count() as f64;
        let union = sa.union(&sb).count() as f64;
        assert!(inter / union > 0.6, "jaccard {}", inter / union);
    }

    #[test]
    fn chain_restart_handles_teleports() {
        // A trajectory that jumps across the network (broken GPS) should
        // still match both segments rather than fail.
        let (net, idx) = setup();
        let r1 = shortest_path(
            &net,
            net.node_ids().next().unwrap(),
            net.node_ids().nth(21).unwrap(),
        )
        .unwrap();
        let far_a = net.node_ids().nth(350).unwrap();
        let far_b = net.node_ids().nth(399).unwrap();
        let r2 = shortest_path(&net, far_a, far_b).unwrap();
        let mut points: Vec<Point> = r1.points().to_vec();
        points.extend_from_slice(r2.points());
        let matched = map_match(&net, &idx, &points, &MatchConfig::default()).unwrap();
        assert!(matched.contains(&net.node_ids().next().unwrap()));
        assert!(matched.contains(&far_b));
    }
}
