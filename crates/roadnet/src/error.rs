use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors produced by road-network operations.
#[derive(Debug, Clone, PartialEq)]
pub enum RoadNetError {
    /// A node id does not belong to the network it was used with.
    UnknownNode(NodeId),
    /// No path connects the requested endpoints.
    NoPath(NodeId, NodeId),
    /// The operation needs a non-empty network.
    EmptyNetwork,
    /// Map matching found no candidate road node near a trajectory point.
    NoCandidates {
        /// Index of the unmatched point in the input trajectory.
        point_index: usize,
    },
    /// Map matching was given an empty trajectory.
    EmptyTrajectory,
}

impl fmt::Display for RoadNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoadNetError::UnknownNode(n) => write!(f, "node {n} does not exist in this network"),
            RoadNetError::NoPath(a, b) => write!(f, "no path from node {a} to node {b}"),
            RoadNetError::EmptyNetwork => write!(f, "operation requires a non-empty road network"),
            RoadNetError::NoCandidates { point_index } => write!(
                f,
                "no road node within the matching radius of trajectory point {point_index}"
            ),
            RoadNetError::EmptyTrajectory => write!(f, "map matching requires at least one point"),
        }
    }
}

impl Error for RoadNetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<RoadNetError>();
    }

    #[test]
    fn messages_mention_the_relevant_ids() {
        let msg = RoadNetError::NoPath(NodeId::new(3), NodeId::new(9)).to_string();
        assert!(msg.contains('3') && msg.contains('9'), "{msg}");
        let msg = RoadNetError::NoCandidates { point_index: 17 }.to_string();
        assert!(msg.contains("17"), "{msg}");
    }
}
