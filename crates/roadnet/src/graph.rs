use geodabs_geo::{BoundingBox, GeoError, Point};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::RoadNetError;

/// Identifier of a node in a [`RoadNetwork`].
///
/// Node ids are dense indexes assigned by [`RoadNetwork::add_node`] and are
/// only meaningful for the network that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Builds a node id from a raw index.
    ///
    /// Mostly useful in tests; regular code should use the ids returned by
    /// [`RoadNetwork::add_node`] or [`RoadNetwork::node_ids`].
    pub fn new(index: u32) -> NodeId {
        NodeId(index)
    }

    /// The underlying dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A directed road segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    to: NodeId,
    length_m: f64,
    speed_mps: f64,
}

impl Edge {
    /// Destination node.
    pub fn to(&self) -> NodeId {
        self.to
    }

    /// Segment length in meters.
    pub fn length_meters(&self) -> f64 {
        self.length_m
    }

    /// Free-flow speed in meters per second.
    pub fn speed_mps(&self) -> f64 {
        self.speed_mps
    }

    /// Traversal time in seconds at free-flow speed.
    pub fn duration_seconds(&self) -> f64 {
        self.length_m / self.speed_mps
    }
}

/// A directed road network with geographic nodes.
///
/// This is the substrate that replaces OpenStreetMap + GraphHopper in the
/// reproduction: routes are generated as shortest paths on this graph and
/// map matching snaps noisy trajectories back onto its nodes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RoadNetwork {
    points: Vec<Point>,
    adjacency: Vec<Vec<Edge>>,
}

impl RoadNetwork {
    /// Creates an empty network.
    pub fn new() -> RoadNetwork {
        RoadNetwork::default()
    }

    /// Adds a node at the given point and returns its id.
    pub fn add_node(&mut self, point: Point) -> NodeId {
        let id = NodeId(u32::try_from(self.points.len()).expect("more than u32::MAX nodes"));
        self.points.push(point);
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds a directed edge with the given free-flow speed; the length is
    /// the haversine distance between the endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`RoadNetError::UnknownNode`] if either endpoint does not
    /// exist.
    ///
    /// # Panics
    ///
    /// Panics if `speed_mps` is not strictly positive.
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        speed_mps: f64,
    ) -> Result<(), RoadNetError> {
        assert!(speed_mps > 0.0, "edge speed must be positive");
        let (a, b) = (self.point(from)?, self.point(to)?);
        let length_m = a.haversine_distance(b);
        self.adjacency[from.index()].push(Edge {
            to,
            length_m,
            speed_mps,
        });
        Ok(())
    }

    /// Adds edges in both directions between two nodes.
    ///
    /// # Errors
    ///
    /// Returns [`RoadNetError::UnknownNode`] if either endpoint does not
    /// exist.
    pub fn add_edge_bidirectional(
        &mut self,
        a: NodeId,
        b: NodeId,
        speed_mps: f64,
    ) -> Result<(), RoadNetError> {
        self.add_edge(a, b, speed_mps)?;
        self.add_edge(b, a, speed_mps)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.points.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum()
    }

    /// The location of a node.
    ///
    /// # Errors
    ///
    /// Returns [`RoadNetError::UnknownNode`] for ids from another network.
    pub fn point(&self, node: NodeId) -> Result<Point, RoadNetError> {
        self.points
            .get(node.index())
            .copied()
            .ok_or(RoadNetError::UnknownNode(node))
    }

    /// Outgoing edges of a node.
    ///
    /// # Errors
    ///
    /// Returns [`RoadNetError::UnknownNode`] for ids from another network.
    pub fn edges(&self, node: NodeId) -> Result<&[Edge], RoadNetError> {
        self.adjacency
            .get(node.index())
            .map(Vec::as_slice)
            .ok_or(RoadNetError::UnknownNode(node))
    }

    /// Iterates over all node ids in insertion order.
    pub fn node_ids(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator + '_ {
        (0..self.points.len() as u32).map(NodeId)
    }

    /// Iterates over all node locations in id order.
    pub fn node_points(&self) -> impl ExactSizeIterator<Item = Point> + '_ {
        self.points.iter().copied()
    }

    /// The bounding box enclosing every node.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::EmptyPointSet`] for an empty network.
    pub fn bounds(&self) -> Result<BoundingBox, GeoError> {
        BoundingBox::enclosing(self.points.iter().copied())
    }

    /// Total length of all directed edges, in meters.
    pub fn total_edge_length_meters(&self) -> f64 {
        self.adjacency
            .iter()
            .flat_map(|edges| edges.iter().map(Edge::length_meters))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> Point {
        Point::new(lat, lon).unwrap()
    }

    fn triangle() -> (RoadNetwork, NodeId, NodeId, NodeId) {
        let mut net = RoadNetwork::new();
        let a = net.add_node(p(0.0, 0.0));
        let b = net.add_node(p(0.0, 0.01));
        let c = net.add_node(p(0.01, 0.0));
        net.add_edge_bidirectional(a, b, 10.0).unwrap();
        net.add_edge_bidirectional(b, c, 10.0).unwrap();
        net.add_edge(a, c, 5.0).unwrap();
        (net, a, b, c)
    }

    #[test]
    fn counts_and_ids() {
        let (net, a, b, c) = triangle();
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.edge_count(), 5);
        assert_eq!(net.node_ids().collect::<Vec<_>>(), vec![a, b, c]);
    }

    #[test]
    fn edge_lengths_are_haversine() {
        let (net, a, _, _) = triangle();
        let e = &net.edges(a).unwrap()[0];
        // 0.01 degrees of longitude at the equator is ~1112 m.
        assert!(
            (e.length_meters() - 1_112.0).abs() < 5.0,
            "{}",
            e.length_meters()
        );
        assert!((e.duration_seconds() - e.length_meters() / 10.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_node_errors() {
        let (mut net, a, _, _) = triangle();
        let ghost = NodeId::new(99);
        assert_eq!(net.point(ghost), Err(RoadNetError::UnknownNode(ghost)));
        assert_eq!(
            net.edges(ghost).err(),
            Some(RoadNetError::UnknownNode(ghost))
        );
        assert_eq!(
            net.add_edge(a, ghost, 10.0),
            Err(RoadNetError::UnknownNode(ghost))
        );
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_panics() {
        let (mut net, a, b, _) = triangle();
        let _ = net.add_edge(a, b, 0.0);
    }

    #[test]
    fn bounds_cover_all_nodes() {
        let (net, _, _, _) = triangle();
        let bb = net.bounds().unwrap();
        for q in net.node_points() {
            assert!(bb.contains(q));
        }
        assert!(RoadNetwork::new().bounds().is_err());
    }

    #[test]
    fn total_edge_length_sums_directed_edges() {
        let (net, _, _, _) = triangle();
        let total = net.total_edge_length_meters();
        assert!(total > 4.0 * 1_100.0, "{total}");
    }

    #[test]
    fn node_id_display_and_accessors() {
        let id = NodeId::new(7);
        assert_eq!(id.to_string(), "7");
        assert_eq!(id.index(), 7);
    }
}
