//! Road-network substrate for the geodabs workspace.
//!
//! The paper generates its dense trajectory dataset from 5 000 routes
//! constrained to a road network (OpenStreetMap + GraphHopper) and uses
//! map matching (Newson & Krumm, its ref \[22\]) as a normalization method.
//! This crate provides those substrates from scratch:
//!
//! * [`RoadNetwork`] — a directed graph with geographic nodes and
//!   speed-annotated edges,
//! * [`generators`] — synthetic networks (perturbed grid and radial
//!   "London-like" topologies),
//! * [`SpatialIndex`] — a uniform grid over nodes for nearest/radius
//!   queries,
//! * [`router`] — Dijkstra and A* shortest paths producing [`Route`]s with
//!   lengths and durations,
//! * [`matching`] — hidden-Markov-model map matching with the Viterbi
//!   algorithm, used by trajectory normalization.
//!
//! # Examples
//!
//! ```
//! use geodabs_roadnet::generators::{grid_network, GridConfig};
//! use geodabs_roadnet::router::shortest_path;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = grid_network(&GridConfig::default(), 42);
//! let from = net.node_ids().next().unwrap();
//! let to = net.node_ids().last().unwrap();
//! let route = shortest_path(&net, from, to)?;
//! assert!(route.length_meters() > 0.0);
//! assert!(route.duration_seconds() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod generators;
mod graph;
pub mod matching;
pub mod router;
mod spatial;

pub use error::RoadNetError;
pub use graph::{Edge, NodeId, RoadNetwork};
pub use router::Route;
pub use spatial::SpatialIndex;
