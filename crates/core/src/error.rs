use std::error::Error;
use std::fmt;

/// Errors produced by geodab configuration and fingerprinting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeodabError {
    /// The winnowing lower bound `k` must be at least 2 (a 1-gram carries
    /// no ordering information).
    InvalidLowerBound(usize),
    /// The winnowing upper bound `t` must satisfy `t >= k`.
    InvalidUpperBound {
        /// The offending upper bound.
        t: usize,
        /// The configured lower bound.
        k: usize,
    },
    /// The geohash prefix width must be between 1 and 31 bits so that both
    /// the prefix and the hash suffix fit a 32-bit geodab.
    InvalidPrefixBits(u8),
    /// The normalization depth must be between 1 and 64 bits.
    InvalidNormalizationDepth(u8),
}

impl fmt::Display for GeodabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeodabError::InvalidLowerBound(k) => {
                write!(f, "winnowing lower bound k={k} must be at least 2")
            }
            GeodabError::InvalidUpperBound { t, k } => {
                write!(f, "winnowing upper bound t={t} must be at least k={k}")
            }
            GeodabError::InvalidPrefixBits(b) => {
                write!(f, "geodab prefix width {b} must be between 1 and 31 bits")
            }
            GeodabError::InvalidNormalizationDepth(d) => {
                write!(f, "normalization depth {d} must be between 1 and 64 bits")
            }
        }
    }
}

impl Error for GeodabError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<GeodabError>();
    }

    #[test]
    fn display_is_informative() {
        assert!(GeodabError::InvalidLowerBound(1)
            .to_string()
            .contains("k=1"));
        assert!(GeodabError::InvalidUpperBound { t: 3, k: 6 }
            .to_string()
            .contains("t=3"));
    }
}
