//! Motif discovery over fingerprint sequences (Section VI-C of the paper).
//!
//! Given two trajectories fingerprinted into ordered geodab sequences `Fi`
//! and `Fj`, the motif-discovery problem becomes: find the pair of windows
//! `(F̄i, F̄j)` of `f` fingerprints each that minimizes the Jaccard
//! distance. Because fingerprint sequences are short (winnowing keeps a
//! `2/(w+1)` fraction of the k-grams), the paper uses — and this module
//! implements — a brute-force scan over all window pairs, which Figure 11
//! shows is orders of magnitude cheaper than computing the discrete
//! Fréchet distance over all sub-trajectory pairs (the BTM baseline).

use crate::Fingerprints;

/// The best-matching pair of fingerprint windows between two trajectories.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotifMatch {
    /// Start offset of the motif in the first fingerprint sequence.
    pub start_a: usize,
    /// Start offset of the motif in the second fingerprint sequence.
    pub start_b: usize,
    /// Window length in fingerprints (the `f = l * a` of the paper, where
    /// `a` is the average number of fingerprints per meter).
    pub len: usize,
    /// Jaccard distance between the two windows' fingerprint sets.
    pub distance: f64,
}

/// Finds the pair of length-`len` fingerprint windows with minimal Jaccard
/// distance, scanning all pairs (ties resolved toward the earliest pair in
/// lexicographic `(start_a, start_b)` order).
///
/// Returns `None` if either sequence is shorter than `len` or `len` is 0.
///
/// # Examples
///
/// ```
/// use geodabs_core::{discover_motif, Fingerprints};
///
/// let a = Fingerprints::from_ordered(vec![1, 2, 3, 4, 90, 91]);
/// let b = Fingerprints::from_ordered(vec![80, 2, 3, 4, 81, 82]);
/// let m = discover_motif(&a, &b, 3).expect("long enough");
/// assert_eq!((m.start_a, m.start_b), (1, 1)); // windows [2,3,4]
/// assert_eq!(m.distance, 0.0);
/// ```
pub fn discover_motif(a: &Fingerprints, b: &Fingerprints, len: usize) -> Option<MotifMatch> {
    let fa = a.ordered();
    let fb = b.ordered();
    if len == 0 || fa.len() < len || fb.len() < len {
        return None;
    }
    // Pre-sort every window once; pairwise distance is then a linear merge.
    let wins_a = sorted_windows(fa, len);
    let wins_b = sorted_windows(fb, len);
    let mut best: Option<MotifMatch> = None;
    for (i, wa) in wins_a.iter().enumerate() {
        for (j, wb) in wins_b.iter().enumerate() {
            let d = jaccard_distance_sorted(wa, wb);
            if best.map(|m| d < m.distance).unwrap_or(true) {
                best = Some(MotifMatch {
                    start_a: i,
                    start_b: j,
                    len,
                    distance: d,
                });
                if d == 0.0 {
                    return best; // cannot improve
                }
            }
        }
    }
    best
}

/// All sliding windows of `len`, each sorted and deduplicated.
fn sorted_windows(seq: &[u32], len: usize) -> Vec<Vec<u32>> {
    seq.windows(len)
        .map(|w| {
            let mut v = w.to_vec();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect()
}

/// Jaccard distance between two sorted, deduplicated slices.
fn jaccard_distance_sorted(a: &[u32], b: &[u32]) -> f64 {
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        1.0 - inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fingerprinter;
    use geodabs_geo::Point;
    use geodabs_traj::Trajectory;
    use proptest::prelude::*;

    fn fps(v: Vec<u32>) -> Fingerprints {
        Fingerprints::from_ordered(v)
    }

    #[test]
    fn finds_exact_shared_window() {
        let a = fps(vec![10, 20, 1, 2, 3, 30]);
        let b = fps(vec![40, 1, 2, 3, 50, 60]);
        let m = discover_motif(&a, &b, 3).unwrap();
        assert_eq!(m.distance, 0.0);
        assert_eq!(&a.ordered()[m.start_a..m.start_a + 3], &[1, 2, 3]);
        assert_eq!(&b.ordered()[m.start_b..m.start_b + 3], &[1, 2, 3]);
    }

    #[test]
    fn prefers_lower_distance_over_earlier_position() {
        // Early windows share 1 of 3; a later pair shares all 3.
        let a = fps(vec![1, 8, 9, 5, 6, 7]);
        let b = fps(vec![1, 2, 3, 5, 6, 7]);
        let m = discover_motif(&a, &b, 3).unwrap();
        assert_eq!(m.distance, 0.0);
        assert_eq!((m.start_a, m.start_b), (3, 3));
    }

    #[test]
    fn too_short_sequences_yield_none() {
        let a = fps(vec![1, 2]);
        let b = fps(vec![1, 2, 3]);
        assert!(discover_motif(&a, &b, 3).is_none());
        assert!(discover_motif(&b, &a, 3).is_none());
        assert!(discover_motif(&a, &b, 0).is_none());
        assert!(discover_motif(&fps(vec![]), &b, 1).is_none());
    }

    #[test]
    fn disjoint_sequences_have_distance_one() {
        let a = fps(vec![1, 2, 3, 4]);
        let b = fps(vec![5, 6, 7, 8]);
        let m = discover_motif(&a, &b, 2).unwrap();
        assert_eq!(m.distance, 1.0);
    }

    #[test]
    fn window_length_is_respected() {
        let a = fps((0..20).collect());
        let b = fps((10..30).collect());
        for len in [1usize, 3, 7] {
            let m = discover_motif(&a, &b, len).unwrap();
            assert_eq!(m.len, len);
            assert!(m.start_a + len <= 20);
            assert!(m.start_b + len <= 20);
        }
    }

    #[test]
    fn end_to_end_motif_on_real_fingerprints() {
        // Two L-shaped trajectories sharing their middle segment, sampled
        // densely (~15 m between points, GPS-like).
        let fp = Fingerprinter::default();
        let start = Point::new(51.5074, -0.1278).unwrap();
        let shared: Vec<Point> = (0..180)
            .map(|i| start.destination(90.0, i as f64 * 15.0))
            .collect();
        let mut a_pts: Vec<Point> = (1..90)
            .rev()
            .map(|i| start.destination(180.0, i as f64 * 15.0))
            .collect();
        a_pts.extend(shared.iter().copied());
        let mut b_pts: Vec<Point> = (1..90)
            .rev()
            .map(|i| start.destination(0.0, i as f64 * 15.0))
            .collect();
        b_pts.extend(shared.iter().copied());
        let fa = fp.normalize_and_fingerprint(&Trajectory::new(a_pts));
        let fb = fp.normalize_and_fingerprint(&Trajectory::new(b_pts));
        let m = discover_motif(&fa, &fb, 4).expect("sequences long enough");
        // The shared eastward stretch must produce a near-perfect motif.
        assert!(m.distance < 0.5, "distance {}", m.distance);
        // Global distance is much worse than the motif distance.
        assert!(fa.jaccard_distance(&fb) > m.distance);
    }

    proptest! {
        #[test]
        fn prop_motif_distance_bounds(
            xs in proptest::collection::vec(0u32..50, 3..30),
            ys in proptest::collection::vec(0u32..50, 3..30),
            len in 1usize..4,
        ) {
            let a = fps(xs);
            let b = fps(ys);
            if let Some(m) = discover_motif(&a, &b, len) {
                prop_assert!((0.0..=1.0).contains(&m.distance));
                prop_assert!(m.start_a + len <= a.len());
                prop_assert!(m.start_b + len <= b.len());
            }
        }

        #[test]
        fn prop_self_motif_is_zero(
            xs in proptest::collection::vec(0u32..1000, 4..30),
            len in 1usize..4,
        ) {
            let a = fps(xs);
            let m = discover_motif(&a, &a, len).unwrap();
            prop_assert_eq!(m.distance, 0.0);
        }

        #[test]
        fn prop_brute_force_reference(
            xs in proptest::collection::vec(0u32..20, 3..15),
            ys in proptest::collection::vec(0u32..20, 3..15),
            len in 1usize..4,
        ) {
            use std::collections::HashSet;
            let a = fps(xs.clone());
            let b = fps(ys.clone());
            let got = discover_motif(&a, &b, len);
            // Independent reference with HashSets.
            let mut best = f64::INFINITY;
            if xs.len() >= len && ys.len() >= len {
                for wa in xs.windows(len) {
                    for wb in ys.windows(len) {
                        let sa: HashSet<u32> = wa.iter().copied().collect();
                        let sb: HashSet<u32> = wb.iter().copied().collect();
                        let inter = sa.intersection(&sb).count();
                        let union = sa.len() + sb.len() - inter;
                        let d = 1.0 - inter as f64 / union as f64;
                        if d < best { best = d; }
                    }
                }
                prop_assert!((got.unwrap().distance - best).abs() < 1e-12);
            } else {
                prop_assert!(got.is_none());
            }
        }
    }
}
