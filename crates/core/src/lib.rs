//! **Geodabs** — trajectory fingerprinting for indexing and similarity
//! search at scale.
//!
//! This crate is the primary contribution of *Chapuis & Garbinato,
//! "Geodabs: Trajectory Indexing Meets Fingerprinting at Scale", ICDCS
//! 2018*. A *geodab* is a 32-bit fingerprint of a `k`-gram of trajectory
//! points that combines:
//!
//! * a **geohash prefix** — the covering geohash of the `k`-gram, which
//!   places the fingerprint on the Z-order space-filling curve and enables
//!   locality-preserving sharding (Figure 3 (a)), and
//! * an **order-sensitive hash suffix** — discriminating among point
//!   sequences by their path *and direction* (Figure 3 (b)).
//!
//! Fingerprints are selected from the stream of `k`-gram geodabs with the
//! **winnowing** algorithm (Schleimer et al.), which guarantees that any
//! shared sub-trajectory of at least `t` moves produces at least one
//! common fingerprint, while shared sub-trajectories shorter than `k`
//! moves are treated as noise (Algorithm 1, Figure 4).
//!
//! # Examples
//!
//! ```
//! use geodabs_core::{Fingerprinter, GeodabConfig};
//! use geodabs_geo::Point;
//! use geodabs_traj::Trajectory;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A straight 3 km path sampled every ~90 m, and a noisy copy of it.
//! let start = Point::new(51.5074, -0.1278)?;
//! let path: Trajectory = (0..34).map(|i| start.destination(90.0, i as f64 * 90.0)).collect();
//! let noisy: Trajectory = path.iter().map(|p| p.destination(45.0, 8.0)).collect();
//!
//! let fp = Fingerprinter::new(GeodabConfig::default());
//! let fa = fp.normalize_and_fingerprint(&path);
//! let fb = fp.normalize_and_fingerprint(&noisy);
//! // The noisy twin is much closer to the original than to its reverse.
//! let reverse = fp.normalize_and_fingerprint(&path.reversed());
//! assert!(fa.jaccard_distance(&fb) < fa.jaccard_distance(&reverse));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod fingerprint;
mod geodab;
pub mod hash;
pub mod motif;
pub mod winnow;

pub use config::{GeodabConfig, GeodabConfigBuilder};
pub use error::GeodabError;
pub use fingerprint::{Fingerprinter, Fingerprints};
pub use geodab::{geodab, geodab_prefix};
pub use motif::{discover_motif, MotifMatch};
