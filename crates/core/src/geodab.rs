use geodabs_geo::{Geohash, Point};

use crate::hash::hash_points;

/// Computes the 32-bit geodab of a point sequence (Figure 3 of the paper):
///
/// ```text
/// geodab(points) = geohash(points) << (32 - prefix_bits)
///                | hash(points) & ((1 << (32 - prefix_bits)) - 1)
/// ```
///
/// * The **prefix** is the covering geohash of the whole sequence,
///   truncated to `prefix_bits` bits. It places the geodab on the Z-order
///   space-filling curve according to the location of the points, which is
///   what enables locality-preserving sharding. In the rare case where the
///   sequence straddles a major cell boundary (its covering geohash is
///   shallower than `prefix_bits`), the prefix falls back to the cell of
///   the sequence's first point, keeping the value deterministic and
///   geographically meaningful.
/// * The **suffix** is an order-sensitive hash of the sequence, which
///   discriminates among `k`-grams by path and direction.
///
/// # Panics
///
/// Panics if `points` is empty or `prefix_bits` is not in `1..=31`.
///
/// # Examples
///
/// ```
/// use geodabs_core::{geodab, geodab_prefix};
/// use geodabs_geo::{Geohash, Point};
///
/// # fn main() -> Result<(), geodabs_geo::GeoError> {
/// let a = Point::new(51.5074, -0.1278)?;
/// let b = a.destination(90.0, 100.0);
/// let g = geodab(&[a, b], 16);
/// // The prefix is the 16-bit cell of the points.
/// assert_eq!(geodab_prefix(g, 16), Geohash::encode(a, 16)?);
/// // Direction matters: the reverse k-gram fingerprints differently.
/// assert_ne!(g, geodab(&[b, a], 16));
/// # Ok(())
/// # }
/// ```
pub fn geodab(points: &[Point], prefix_bits: u8) -> u32 {
    assert!(!points.is_empty(), "geodab requires at least one point");
    assert!(
        (1..=31).contains(&prefix_bits),
        "prefix must be between 1 and 31 bits"
    );
    let covering = Geohash::covering(points.iter().copied())
        .expect("non-empty point set always has a covering geohash");
    let prefix = if covering.depth() >= prefix_bits {
        covering
            .truncate(prefix_bits)
            .expect("truncation to a shallower depth always succeeds")
    } else {
        // Boundary-straddling k-gram: anchor the prefix at the first point.
        Geohash::encode(points[0], prefix_bits).expect("prefix_bits <= 31 is a valid depth")
    };
    let suffix_bits = 32 - u32::from(prefix_bits);
    let suffix_mask = (1u64 << suffix_bits) - 1;
    let suffix = hash_points(points) & suffix_mask;
    ((prefix.bits() as u32) << suffix_bits) | suffix as u32
}

/// Extracts the geohash prefix of a geodab produced with the same
/// `prefix_bits` — the bitwise operation the sharding layer uses
/// (Section VI-E).
///
/// # Panics
///
/// Panics if `prefix_bits` is not in `1..=31`.
pub fn geodab_prefix(geodab: u32, prefix_bits: u8) -> Geohash {
    assert!(
        (1..=31).contains(&prefix_bits),
        "prefix must be between 1 and 31 bits"
    );
    let bits = u64::from(geodab >> (32 - u32::from(prefix_bits)));
    Geohash::from_bits(bits, prefix_bits).expect("shifted prefix always fits its depth")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(lat: f64, lon: f64) -> Point {
        Point::new(lat, lon).unwrap()
    }

    fn london_gram(offset_m: f64) -> Vec<Point> {
        let start = p(51.5074, -0.1278).destination(90.0, offset_m);
        (0..6)
            .map(|i| start.destination(90.0, i as f64 * 85.0))
            .collect()
    }

    #[test]
    fn prefix_is_covering_cell() {
        let gram = london_gram(0.0);
        let g = geodab(&gram, 16);
        let expected = Geohash::covering(gram.iter().copied())
            .unwrap()
            .truncate(16)
            .unwrap();
        assert_eq!(geodab_prefix(g, 16), expected);
    }

    #[test]
    fn deterministic() {
        let gram = london_gram(100.0);
        assert_eq!(geodab(&gram, 16), geodab(&gram, 16));
    }

    #[test]
    fn direction_sensitive() {
        let gram = london_gram(0.0);
        let mut rev = gram.clone();
        rev.reverse();
        let fwd_dab = geodab(&gram, 16);
        let rev_dab = geodab(&rev, 16);
        assert_ne!(fwd_dab, rev_dab);
        // But both land in the same 16-bit cell: same shard.
        assert_eq!(geodab_prefix(fwd_dab, 16), geodab_prefix(rev_dab, 16));
    }

    #[test]
    fn nearby_grams_share_prefix_distinct_suffix() {
        let a = geodab(&london_gram(0.0), 16);
        let b = geodab(&london_gram(85.0), 16);
        assert_ne!(a, b);
        assert_eq!(geodab_prefix(a, 16), geodab_prefix(b, 16));
    }

    #[test]
    fn distant_grams_get_different_prefixes() {
        let london = geodab(&london_gram(0.0), 16);
        let tokyo_start = p(35.68, 139.76);
        let tokyo: Vec<Point> = (0..6)
            .map(|i| tokyo_start.destination(90.0, i as f64 * 85.0))
            .collect();
        let tokyo_dab = geodab(&tokyo, 16);
        assert_ne!(geodab_prefix(london, 16), geodab_prefix(tokyo_dab, 16));
    }

    #[test]
    fn boundary_straddling_gram_uses_first_point_cell() {
        // Two points in different hemispheres: covering is the world cell,
        // so the prefix anchors at the first point.
        let a = p(10.0, -90.0);
        let b = p(10.0, 90.0);
        let g = geodab(&[a, b], 16);
        assert_eq!(geodab_prefix(g, 16), Geohash::encode(a, 16).unwrap());
        // And swapping makes the *prefix* change too.
        let swapped = geodab(&[b, a], 16);
        assert_eq!(geodab_prefix(swapped, 16), Geohash::encode(b, 16).unwrap());
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_gram_panics() {
        let _ = geodab(&[], 16);
    }

    #[test]
    #[should_panic(expected = "between 1 and 31")]
    fn prefix_zero_panics() {
        let _ = geodab(&[p(0.0, 0.0)], 0);
    }

    #[test]
    #[should_panic(expected = "between 1 and 31")]
    fn prefix_32_panics() {
        let _ = geodab_prefix(0, 32);
    }

    proptest! {
        #[test]
        fn prop_prefix_extraction_roundtrip(
            lat in -80.0f64..80.0, lon in -170.0f64..170.0,
            bearing in 0.0f64..360.0, prefix_bits in 1u8..=31,
        ) {
            let start = p(lat, lon);
            let gram: Vec<Point> = (0..4)
                .map(|i| start.destination(bearing, i as f64 * 50.0))
                .collect();
            let g = geodab(&gram, prefix_bits);
            let prefix = geodab_prefix(g, prefix_bits);
            prop_assert_eq!(prefix.depth(), prefix_bits);
            // The prefix cell contains the first point (always true for
            // both the covering and the fallback case when the covering is
            // at least as deep as the prefix; the fallback guarantees it).
            let cell_of_first = Geohash::encode(gram[0], prefix_bits).unwrap();
            let covering = Geohash::covering(gram.iter().copied()).unwrap();
            if covering.depth() >= prefix_bits {
                prop_assert_eq!(prefix, covering.truncate(prefix_bits).unwrap());
            } else {
                prop_assert_eq!(prefix, cell_of_first);
            }
        }

        #[test]
        fn prop_wider_prefix_refines_narrower(
            lat in -80.0f64..80.0, lon in -170.0f64..170.0,
        ) {
            // The 16-bit prefix of geodab(…, 16) is an ancestor of the
            // 24-bit prefix of geodab(…, 24) for grams well inside a cell.
            let start = p(lat, lon);
            let gram: Vec<Point> = (0..3)
                .map(|i| start.destination(0.0, i as f64 * 10.0))
                .collect();
            let covering = Geohash::covering(gram.iter().copied()).unwrap();
            prop_assume!(covering.depth() >= 24);
            let p16 = geodab_prefix(geodab(&gram, 16), 16);
            let p24 = geodab_prefix(geodab(&gram, 24), 24);
            prop_assert!(p16.contains_hash(&p24));
        }
    }
}
