//! Order-sensitive hashing of point sequences.
//!
//! The suffix half of a geodab must discriminate among `k`-grams "according
//! to their path and their ordering" (Figure 3 (b) of the paper). Any
//! sequential, well-mixed hash works; this module implements FNV-1a over
//! the bit patterns of the coordinates, which is deterministic across
//! platforms for the cell-center points produced by normalization.

use geodabs_geo::Point;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte stream.
fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hashes a point sequence, sensitive to both content and order.
///
/// Reversing a sequence of two or more distinct points yields a different
/// hash with overwhelming probability, which is what lets geodabs
/// discriminate trajectory direction where plain geohashes cannot
/// (Figure 12 of the paper).
///
/// ```
/// use geodabs_core::hash::hash_points;
/// use geodabs_geo::Point;
///
/// # fn main() -> Result<(), geodabs_geo::GeoError> {
/// let a = Point::new(51.0, 0.0)?;
/// let b = Point::new(51.1, 0.1)?;
/// assert_ne!(hash_points(&[a, b]), hash_points(&[b, a]));
/// # Ok(())
/// # }
/// ```
pub fn hash_points(points: &[Point]) -> u64 {
    let mut h = FNV_OFFSET;
    for p in points {
        h = fnv1a(h, &p.lat().to_bits().to_le_bytes());
        h = fnv1a(h, &p.lon().to_bits().to_le_bytes());
    }
    h
}

/// Hashes a single `u64`, used to mix geohash cell ids when hashing
/// normalized cell sequences directly.
pub fn hash_u64(value: u64) -> u64 {
    fnv1a(FNV_OFFSET, &value.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn p(lat: f64, lon: f64) -> Point {
        Point::new(lat, lon).unwrap()
    }

    #[test]
    fn empty_sequence_is_the_offset_basis() {
        assert_eq!(hash_points(&[]), FNV_OFFSET);
    }

    #[test]
    fn deterministic() {
        let pts = [p(1.0, 2.0), p(3.0, 4.0)];
        assert_eq!(hash_points(&pts), hash_points(&pts));
    }

    #[test]
    fn order_sensitive() {
        let a = p(51.0, 0.0);
        let b = p(51.1, 0.1);
        let c = p(51.2, 0.2);
        assert_ne!(hash_points(&[a, b, c]), hash_points(&[c, b, a]));
        assert_ne!(hash_points(&[a, b, c]), hash_points(&[a, c, b]));
    }

    #[test]
    fn content_sensitive() {
        let a = p(51.0, 0.0);
        let b = p(51.1, 0.1);
        assert_ne!(hash_points(&[a]), hash_points(&[b]));
        assert_ne!(hash_points(&[a, a]), hash_points(&[a]));
    }

    #[test]
    fn low_16_bits_are_well_distributed() {
        // The geodab suffix keeps only the low bits; they must not collide
        // pathologically for regular grids of points.
        let mut seen = HashSet::new();
        for i in 0..64 {
            for j in 0..64 {
                let gram = [
                    p(51.0 + i as f64 * 0.001, 0.0 + j as f64 * 0.001),
                    p(51.0 + j as f64 * 0.001, 0.0 + i as f64 * 0.001),
                ];
                seen.insert((hash_points(&gram) & 0xffff) as u16);
            }
        }
        // 4096 grams into 65536 buckets: expect >90% distinct under a good
        // hash (birthday collisions account for the rest).
        assert!(seen.len() > 3_700, "only {} distinct suffixes", seen.len());
    }

    #[test]
    fn hash_u64_mixes() {
        let h0 = hash_u64(0);
        let h1 = hash_u64(1);
        assert_ne!(h0, h1);
        // Flipping one input bit flips many output bits.
        assert!((h0 ^ h1).count_ones() > 8);
    }

    proptest! {
        #[test]
        fn prop_swapping_two_points_changes_hash(
            lat1 in -89.0f64..89.0, lon1 in -179.0f64..179.0,
            lat2 in -89.0f64..89.0, lon2 in -179.0f64..179.0,
        ) {
            prop_assume!((lat1, lon1) != (lat2, lon2));
            let a = p(lat1, lon1);
            let b = p(lat2, lon2);
            prop_assert_ne!(hash_points(&[a, b]), hash_points(&[b, a]));
        }

        #[test]
        fn prop_extension_changes_hash(
            lats in proptest::collection::vec(-89.0f64..89.0, 1..8),
        ) {
            let pts: Vec<Point> = lats.iter().map(|&la| p(la, la / 2.0)).collect();
            let shorter = hash_points(&pts[..pts.len() - 1]);
            let full = hash_points(&pts);
            prop_assert_ne!(shorter, full);
        }
    }
}
