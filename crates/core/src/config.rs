use serde::{Deserialize, Serialize};

use crate::GeodabError;

/// Configuration of geodab fingerprinting.
///
/// The defaults are the parameters the paper validates in Section VI-A2:
/// 36-bit geohash normalization, winnowing lower bound `k = 6`, upper
/// bound `t = 12` and a 16-bit geohash prefix inside the 32-bit geodab
/// (Section VI-E). With ~85 m between consecutive normalized points in
/// London, `k` and `t` translate to noise/guarantee thresholds of roughly
/// 510 m and 1 020 m.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeodabConfig {
    normalization_depth: u8,
    k: usize,
    t: usize,
    prefix_bits: u8,
}

impl Default for GeodabConfig {
    fn default() -> GeodabConfig {
        GeodabConfig {
            normalization_depth: 36,
            k: 6,
            t: 12,
            prefix_bits: 16,
        }
    }
}

/// Chainable builder for [`GeodabConfig`], starting from the paper's
/// defaults. All validation happens in [`GeodabConfigBuilder::build`], so
/// setters can be combined in any order:
///
/// ```
/// use geodabs_core::GeodabConfig;
///
/// # fn main() -> Result<(), geodabs_core::GeodabError> {
/// let config = GeodabConfig::builder().k(6).t(12).prefix_bits(16).build()?;
/// assert_eq!(config, GeodabConfig::default());
/// let coarse = GeodabConfig::builder().normalization_depth(30).build()?;
/// assert_eq!(coarse.normalization_depth(), 30);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeodabConfigBuilder {
    normalization_depth: u8,
    k: usize,
    t: usize,
    prefix_bits: u8,
}

impl Default for GeodabConfigBuilder {
    fn default() -> GeodabConfigBuilder {
        GeodabConfig::default().to_builder()
    }
}

impl GeodabConfigBuilder {
    /// Sets the geohash depth used to normalize trajectories, in bits.
    pub fn normalization_depth(mut self, depth: u8) -> GeodabConfigBuilder {
        self.normalization_depth = depth;
        self
    }

    /// Sets the winnowing lower bound `k` (noise threshold, in moves).
    pub fn k(mut self, k: usize) -> GeodabConfigBuilder {
        self.k = k;
        self
    }

    /// Sets the winnowing upper bound `t` (guarantee threshold, in moves).
    pub fn t(mut self, t: usize) -> GeodabConfigBuilder {
        self.t = t;
        self
    }

    /// Sets the geohash prefix width inside the 32-bit geodab.
    pub fn prefix_bits(mut self, prefix_bits: u8) -> GeodabConfigBuilder {
        self.prefix_bits = prefix_bits;
        self
    }

    /// Validates the accumulated parameters into a [`GeodabConfig`].
    ///
    /// # Errors
    ///
    /// * [`GeodabError::InvalidLowerBound`] if `k < 2`,
    /// * [`GeodabError::InvalidUpperBound`] if `t < k`,
    /// * [`GeodabError::InvalidPrefixBits`] if `prefix_bits` is 0 or ≥ 32,
    /// * [`GeodabError::InvalidNormalizationDepth`] if the depth is 0 or
    ///   above 64.
    pub fn build(self) -> Result<GeodabConfig, GeodabError> {
        GeodabConfig::new(self.normalization_depth, self.k, self.t, self.prefix_bits)
    }
}

impl GeodabConfig {
    /// Starts a builder seeded with the paper's default parameters.
    pub fn builder() -> GeodabConfigBuilder {
        GeodabConfigBuilder::default()
    }

    /// Re-opens this configuration as a builder, e.g. to derive a variant
    /// for a parameter sweep.
    pub fn to_builder(self) -> GeodabConfigBuilder {
        GeodabConfigBuilder {
            normalization_depth: self.normalization_depth,
            k: self.k,
            t: self.t,
            prefix_bits: self.prefix_bits,
        }
    }

    /// Creates a configuration, validating all parameters.
    ///
    /// # Errors
    ///
    /// * [`GeodabError::InvalidLowerBound`] if `k < 2`,
    /// * [`GeodabError::InvalidUpperBound`] if `t < k`,
    /// * [`GeodabError::InvalidPrefixBits`] if `prefix_bits` is 0 or ≥ 32,
    /// * [`GeodabError::InvalidNormalizationDepth`] if the depth is 0 or
    ///   above 64.
    pub fn new(
        normalization_depth: u8,
        k: usize,
        t: usize,
        prefix_bits: u8,
    ) -> Result<GeodabConfig, GeodabError> {
        if k < 2 {
            return Err(GeodabError::InvalidLowerBound(k));
        }
        if t < k {
            return Err(GeodabError::InvalidUpperBound { t, k });
        }
        if prefix_bits == 0 || prefix_bits >= 32 {
            return Err(GeodabError::InvalidPrefixBits(prefix_bits));
        }
        if normalization_depth == 0 || normalization_depth > 64 {
            return Err(GeodabError::InvalidNormalizationDepth(normalization_depth));
        }
        Ok(GeodabConfig {
            normalization_depth,
            k,
            t,
            prefix_bits,
        })
    }

    /// Geohash depth used to normalize trajectories, in bits.
    pub fn normalization_depth(&self) -> u8 {
        self.normalization_depth
    }

    /// Winnowing lower bound `k`: matches shorter than `k` points are
    /// considered noise.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Winnowing upper bound `t`: common sub-trajectories of at least `t`
    /// points are guaranteed to share a fingerprint.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Winnowing window size `w = t − k + 1`.
    pub fn window(&self) -> usize {
        self.t - self.k + 1
    }

    /// Width of the geohash prefix inside the 32-bit geodab.
    pub fn prefix_bits(&self) -> u8 {
        self.prefix_bits
    }

    /// The noise threshold in meters: sub-trajectories shorter than this
    /// are not guaranteed to be detected, given the average distance
    /// between consecutive normalized points.
    pub fn noise_threshold_meters(&self, avg_move_meters: f64) -> f64 {
        self.k as f64 * avg_move_meters
    }

    /// The guarantee threshold in meters: common sub-trajectories at least
    /// this long always share a fingerprint, given the average distance
    /// between consecutive normalized points.
    pub fn guarantee_threshold_meters(&self, avg_move_meters: f64) -> f64 {
        self.t as f64 * avg_move_meters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let c = GeodabConfig::default();
        assert_eq!(c.normalization_depth(), 36);
        assert_eq!(c.k(), 6);
        assert_eq!(c.t(), 12);
        assert_eq!(c.prefix_bits(), 16);
        assert_eq!(c.window(), 7);
    }

    #[test]
    fn paper_thresholds_at_85m_moves() {
        // Section VI-A2: k=6 -> ~510 m noise threshold, t=12 -> ~1020 m.
        let c = GeodabConfig::default();
        assert!((c.noise_threshold_meters(85.0) - 510.0).abs() < 1e-9);
        assert!((c.guarantee_threshold_meters(85.0) - 1020.0).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert_eq!(
            GeodabConfig::new(36, 1, 12, 16),
            Err(GeodabError::InvalidLowerBound(1))
        );
        assert_eq!(
            GeodabConfig::new(36, 6, 5, 16),
            Err(GeodabError::InvalidUpperBound { t: 5, k: 6 })
        );
        assert_eq!(
            GeodabConfig::new(36, 6, 12, 0),
            Err(GeodabError::InvalidPrefixBits(0))
        );
        assert_eq!(
            GeodabConfig::new(36, 6, 12, 32),
            Err(GeodabError::InvalidPrefixBits(32))
        );
        assert_eq!(
            GeodabConfig::new(0, 6, 12, 16),
            Err(GeodabError::InvalidNormalizationDepth(0))
        );
        assert_eq!(
            GeodabConfig::new(65, 6, 12, 16),
            Err(GeodabError::InvalidNormalizationDepth(65))
        );
    }

    #[test]
    fn builder_variants_override_one_field() {
        let c = GeodabConfig::default();
        assert_eq!(
            c.to_builder()
                .normalization_depth(40)
                .build()
                .unwrap()
                .normalization_depth(),
            40
        );
        let b = c.to_builder().k(4).t(8).build().unwrap();
        assert_eq!((b.k(), b.t(), b.window()), (4, 8, 5));
        assert_eq!(
            c.to_builder().prefix_bits(8).build().unwrap().prefix_bits(),
            8
        );
        assert!(c.to_builder().prefix_bits(0).build().is_err());
    }

    #[test]
    fn k_equal_t_gives_window_of_one() {
        let c = GeodabConfig::builder().k(6).t(6).build().unwrap();
        assert_eq!(c.window(), 1);
    }

    #[test]
    fn builder_defaults_match_default_config() {
        assert_eq!(GeodabConfig::builder().build(), Ok(GeodabConfig::default()));
    }

    #[test]
    fn builder_sets_every_field() {
        let c = GeodabConfig::builder()
            .normalization_depth(40)
            .k(4)
            .t(9)
            .prefix_bits(20)
            .build()
            .unwrap();
        assert_eq!(
            (c.normalization_depth(), c.k(), c.t(), c.prefix_bits()),
            (40, 4, 9, 20)
        );
    }

    #[test]
    fn builder_validation_matches_new() {
        assert_eq!(
            GeodabConfig::builder().k(1).build(),
            Err(GeodabError::InvalidLowerBound(1))
        );
        assert_eq!(
            GeodabConfig::builder().k(6).t(5).build(),
            Err(GeodabError::InvalidUpperBound { t: 5, k: 6 })
        );
        assert_eq!(
            GeodabConfig::builder().prefix_bits(0).build(),
            Err(GeodabError::InvalidPrefixBits(0))
        );
        assert_eq!(
            GeodabConfig::builder().prefix_bits(32).build(),
            Err(GeodabError::InvalidPrefixBits(32))
        );
        assert_eq!(
            GeodabConfig::builder().normalization_depth(0).build(),
            Err(GeodabError::InvalidNormalizationDepth(0))
        );
        assert_eq!(
            GeodabConfig::builder().normalization_depth(65).build(),
            Err(GeodabError::InvalidNormalizationDepth(65))
        );
    }

    #[test]
    fn to_builder_roundtrips() {
        let c = GeodabConfig::new(40, 4, 9, 20).unwrap();
        assert_eq!(c.to_builder().build(), Ok(c));
        // Deriving a variant only changes the overridden field.
        let v = c.to_builder().prefix_bits(8).build().unwrap();
        assert_eq!(v.prefix_bits(), 8);
        assert_eq!(v.k(), 4);
    }
}
