use geodabs_roaring::RoaringBitmap;
use geodabs_traj::{GeohashNormalizer, Normalizer, Trajectory};

use crate::geodab::geodab;
use crate::winnow::winnow;
use crate::GeodabConfig;

/// The fingerprints of one trajectory: an ordered sequence of geodabs (as
/// selected by winnowing) plus the corresponding set as a roaring bitmap.
///
/// The *ordered* view drives motif discovery (Section VI-C); the *set*
/// view drives indexing and Jaccard ranking (Section IV-A).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Fingerprints {
    ordered: Vec<u32>,
    set: RoaringBitmap,
}

impl Fingerprints {
    /// Builds fingerprints from an ordered geodab selection.
    pub fn from_ordered(ordered: Vec<u32>) -> Fingerprints {
        let set = ordered.iter().copied().collect();
        Fingerprints { ordered, set }
    }

    /// The selected geodabs in trajectory order (may repeat).
    pub fn ordered(&self) -> &[u32] {
        &self.ordered
    }

    /// The distinct geodabs as a roaring bitmap.
    pub fn set(&self) -> &RoaringBitmap {
        &self.set
    }

    /// Number of selected fingerprints (ordered view, with repeats).
    pub fn len(&self) -> usize {
        self.ordered.len()
    }

    /// Whether the trajectory produced no fingerprint (shorter than `k`).
    pub fn is_empty(&self) -> bool {
        self.ordered.is_empty()
    }

    /// Number of distinct geodabs.
    pub fn distinct_len(&self) -> u64 {
        self.set.len()
    }

    /// The Jaccard coefficient between the two fingerprint sets.
    pub fn jaccard(&self, other: &Fingerprints) -> f64 {
        self.set.jaccard(&other.set)
    }

    /// The Jaccard distance `δ` used to rank retrieval results
    /// (Equation 1 of the paper).
    pub fn jaccard_distance(&self, other: &Fingerprints) -> f64 {
        self.set.jaccard_distance(&other.set)
    }
}

impl<'a> IntoIterator for &'a Fingerprints {
    type Item = u32;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, u32>>;

    fn into_iter(self) -> Self::IntoIter {
        self.ordered.iter().copied()
    }
}

/// Extracts geodab fingerprints from trajectories — the function `W(S) = F`
/// of the paper, implementing its Algorithm 1.
///
/// The fingerprinter is cheap to construct and stateless; share one across
/// threads freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprinter {
    config: GeodabConfig,
}

impl Fingerprinter {
    /// Creates a fingerprinter with the given configuration.
    pub fn new(config: GeodabConfig) -> Fingerprinter {
        Fingerprinter { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GeodabConfig {
        &self.config
    }

    /// Fingerprints an **already normalized** trajectory: computes the
    /// geodab of every `k`-gram and winnows with window `t − k + 1`.
    ///
    /// Trajectories shorter than `k` points produce no fingerprints
    /// (matches below the noise threshold are discarded by design).
    pub fn fingerprint(&self, normalized: &Trajectory) -> Fingerprints {
        let k = self.config.k();
        if normalized.len() < k {
            return Fingerprints::default();
        }
        let candidates: Vec<u32> = normalized
            .k_grams(k)
            .map(|gram| geodab(gram, self.config.prefix_bits()))
            .collect();
        Fingerprints::from_ordered(winnow(&candidates, self.config.window()))
    }

    /// Normalizes with the given normalizer, then fingerprints.
    pub fn fingerprint_with<N: Normalizer + ?Sized>(
        &self,
        normalizer: &N,
        raw: &Trajectory,
    ) -> Fingerprints {
        self.fingerprint(&normalizer.normalize(raw))
    }

    /// Normalizes on the geohash grid at the configured depth
    /// (Section V-A) — using the noise-robust variant with smoothing and
    /// transition hysteresis — then fingerprints. This is the default
    /// pipeline for raw GPS-like input.
    ///
    /// Use [`Fingerprinter::fingerprint_with`] with a plain
    /// [`GeohashNormalizer::new`] to reproduce the paper's literal
    /// construction without the robustness additions.
    pub fn normalize_and_fingerprint(&self, raw: &Trajectory) -> Fingerprints {
        let normalizer = GeohashNormalizer::robust(self.config.normalization_depth())
            .expect("config depth is validated at construction");
        self.fingerprint_with(&normalizer, raw)
    }
}

impl Default for Fingerprinter {
    /// A fingerprinter with the paper's default parameters.
    fn default() -> Fingerprinter {
        Fingerprinter::new(GeodabConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodabs_geo::Point;

    fn p(lat: f64, lon: f64) -> Point {
        Point::new(lat, lon).unwrap()
    }

    /// A path of `n` points moving east in ~90 m steps (about one 36-bit
    /// cell per step in London).
    fn eastward(n: usize, offset_m: f64) -> Trajectory {
        let start = p(51.5074, -0.1278).destination(90.0, offset_m);
        (0..n)
            .map(|i| start.destination(90.0, i as f64 * 90.0))
            .collect()
    }

    #[test]
    fn short_trajectories_produce_no_fingerprints() {
        let fp = Fingerprinter::default();
        assert!(fp.fingerprint(&eastward(5, 0.0)).is_empty()); // k = 6
        assert!(fp.fingerprint(&Trajectory::default()).is_empty());
        assert!(!fp.fingerprint(&eastward(6, 0.0)).is_empty());
    }

    #[test]
    fn fingerprints_are_deterministic() {
        let fp = Fingerprinter::default();
        let t = eastward(40, 0.0);
        assert_eq!(fp.fingerprint(&t), fp.fingerprint(&t));
    }

    #[test]
    fn identical_trajectories_have_zero_distance() {
        let fp = Fingerprinter::default();
        let f = fp.normalize_and_fingerprint(&eastward(40, 0.0));
        assert_eq!(f.jaccard_distance(&f), 0.0);
        assert_eq!(f.jaccard(&f), 1.0);
    }

    /// A GPS-like dense path: one sample every ~14 m (1 Hz at urban
    /// speed), which is what the robust normalization pipeline targets.
    fn dense_eastward(n: usize, offset_m: f64) -> Trajectory {
        let start = p(51.5074, -0.1278).destination(90.0, offset_m);
        (0..n)
            .map(|i| start.destination(90.0, i as f64 * 14.0))
            .collect()
    }

    #[test]
    fn noisy_twin_is_close_reverse_is_far() {
        let fp = Fingerprinter::default();
        let t = dense_eastward(260, 0.0);
        let noisy: Trajectory = t
            .iter()
            .enumerate()
            .map(|(i, q)| q.destination(if i % 2 == 0 { 30.0 } else { 210.0 }, 12.0))
            .collect();
        let fa = fp.normalize_and_fingerprint(&t);
        let fb = fp.normalize_and_fingerprint(&noisy);
        let fr = fp.normalize_and_fingerprint(&t.reversed());
        let d_twin = fa.jaccard_distance(&fb);
        let d_rev = fa.jaccard_distance(&fr);
        assert!(d_twin < 0.5, "noisy twin too far: {d_twin}");
        assert!(d_rev > 0.9, "reverse too close: {d_rev}");
        assert!(d_twin < d_rev);
    }

    #[test]
    fn disjoint_paths_share_nothing() {
        let fp = Fingerprinter::default();
        let a = fp.normalize_and_fingerprint(&eastward(40, 0.0));
        let b = fp.normalize_and_fingerprint(&eastward(40, 50_000.0));
        assert_eq!(a.jaccard(&b), 0.0);
        assert!(a.set().is_disjoint(b.set()));
    }

    #[test]
    fn overlapping_paths_share_fingerprints() {
        // Two paths sharing a long common stretch (>= t moves) must share
        // at least one fingerprint — the winnowing guarantee end to end.
        let fp = Fingerprinter::default();
        let a = fp.normalize_and_fingerprint(&eastward(40, 0.0));
        // Same path, but starting 10 moves in and extending further.
        let b = fp.normalize_and_fingerprint(&eastward(40, 10.0 * 90.0));
        assert!(
            a.set().intersection_len(b.set()) >= 1,
            "winnowing guarantee violated"
        );
        let d = a.jaccard_distance(&b);
        assert!(d < 1.0 && d > 0.0, "distance {d}");
    }

    #[test]
    fn ordered_view_follows_trajectory_order() {
        let fp = Fingerprinter::default();
        let f = fp.normalize_and_fingerprint(&eastward(60, 0.0));
        assert!(f.len() >= 2);
        assert_eq!(f.ordered().len(), f.len());
        // Every ordered entry is in the set.
        for g in &f {
            assert!(f.set().contains(g));
        }
        assert!(f.distinct_len() <= f.len() as u64);
    }

    #[test]
    fn fingerprint_density_tracks_window() {
        // Expected winnowing density is 2/(w+1) over the k-gram stream.
        let fp = Fingerprinter::default();
        let t = eastward(300, 0.0);
        let n = GeohashNormalizer::new(36).unwrap().normalize(&t);
        let f = fp.fingerprint(&n);
        let candidates = n.len() - fp.config().k() + 1;
        let density = f.len() as f64 / candidates as f64;
        let expected = 2.0 / (fp.config().window() as f64 + 1.0);
        assert!(
            (density - expected).abs() < 0.15,
            "density {density:.3} vs expected {expected:.3}"
        );
    }

    #[test]
    fn fingerprint_with_identity_equals_fingerprint() {
        use geodabs_traj::IdentityNormalizer;
        let fp = Fingerprinter::default();
        let t = eastward(30, 0.0);
        assert_eq!(
            fp.fingerprint_with(&IdentityNormalizer, &t),
            fp.fingerprint(&t)
        );
    }

    #[test]
    fn from_ordered_builds_consistent_set() {
        let f = Fingerprints::from_ordered(vec![5, 3, 5, 9]);
        assert_eq!(f.len(), 4);
        assert_eq!(f.distinct_len(), 3);
        assert!(f.set().contains(3));
        assert!(f.set().contains(5));
        assert!(f.set().contains(9));
    }

    #[test]
    fn default_fingerprinter_uses_default_config() {
        assert_eq!(*Fingerprinter::default().config(), GeodabConfig::default());
    }
}
