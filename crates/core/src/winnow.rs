//! The winnowing fingerprint-selection algorithm (Schleimer, Wilkerson &
//! Aiken, SIGMOD'03 — the paper's ref \[25\], adapted in its Algorithm 1).
//!
//! Winnowing slides a window of size `w = t − k + 1` over the sequence of
//! `k`-gram hashes and selects, in each window, the minimum value (the
//! *rightmost* minimum on ties). This gives two guarantees:
//!
//! * any common hash run of length ≥ `w` (i.e. any common sub-trajectory
//!   of ≥ `t` points) contributes at least one common fingerprint;
//! * no fingerprint pair matches on runs shorter than `k` points.
//!
//! The classic `h mod p == 0` sampling (Section III-B of the paper) is
//! also provided, for the `ablation_sampling` bench: it is cheaper but
//! offers no detection guarantee.

/// Selects fingerprints from a candidate hash sequence by winnowing.
///
/// Returns the selected values in positional order; a candidate selected
/// by several consecutive windows is reported once (the standard
/// "record the position" optimization). Sequences no longer than the
/// window yield their single minimum; an empty sequence yields nothing.
///
/// # Panics
///
/// Panics if `window` is zero.
///
/// # Examples
///
/// ```
/// use geodabs_core::winnow::winnow;
///
/// // Window of 4 over the classic winnowing example sequence.
/// let hashes = [77, 74, 42, 17, 98, 50, 17, 98, 8, 88, 67, 39, 77, 74, 42, 17, 98];
/// let picks = winnow(&hashes, 4);
/// assert_eq!(picks, vec![17, 17, 8, 39, 17]);
/// ```
pub fn winnow(candidates: &[u32], window: usize) -> Vec<u32> {
    assert!(window > 0, "winnowing window must be positive");
    if candidates.is_empty() {
        return Vec::new();
    }
    if candidates.len() <= window {
        return vec![rightmost_min(candidates).1];
    }
    let mut out = Vec::new();
    let mut last_pos = usize::MAX;
    for start in 0..=candidates.len() - window {
        let (off, val) = rightmost_min(&candidates[start..start + window]);
        let pos = start + off;
        if pos != last_pos {
            out.push(val);
            last_pos = pos;
        }
    }
    out
}

/// Selects every candidate `h` with `h % p == 0` (mod-p sampling).
///
/// This is the pre-winnowing practice described in Section III-B: the
/// expected density is `1/p`, but there is **no** guarantee that a long
/// common run produces a common fingerprint.
///
/// # Panics
///
/// Panics if `p` is zero.
pub fn sample_mod_p(candidates: &[u32], p: u32) -> Vec<u32> {
    assert!(p > 0, "sampling modulus must be positive");
    candidates.iter().copied().filter(|h| h % p == 0).collect()
}

/// Streaming winnowing over an iterator of candidates, using a monotonic
/// deque — the "optimised version of this algorithm \[relying\] on circular
/// buffers" the paper mentions (and then drops, since normalized
/// trajectories are short). `O(n)` total instead of `O(n · w)`.
///
/// Produces exactly the same selection as [`winnow`]; the equivalence is
/// enforced by property tests and the `crit_kernels` bench compares their
/// throughput.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn winnow_streaming<I: IntoIterator<Item = u32>>(candidates: I, window: usize) -> Vec<u32> {
    assert!(window > 0, "winnowing window must be positive");
    // Deque of (position, value), values strictly increasing front→back:
    // the front is always the rightmost minimum of the current window.
    let mut deque: std::collections::VecDeque<(usize, u32)> = std::collections::VecDeque::new();
    let mut out = Vec::new();
    let mut last_pos = usize::MAX;
    let mut len = 0usize;
    for (i, v) in candidates.into_iter().enumerate() {
        len = i + 1;
        // Drop entries that can no longer be a rightmost minimum: a new
        // value `v` at a later position wins every tie, so pop `>=`.
        while deque.back().map(|&(_, bv)| bv >= v).unwrap_or(false) {
            deque.pop_back();
        }
        deque.push_back((i, v));
        if i + 1 >= window {
            // Window is [i + 1 - window, i]; expire the front if outside.
            let start = i + 1 - window;
            while deque.front().map(|&(p, _)| p < start).unwrap_or(false) {
                deque.pop_front();
            }
            let &(pos, val) = deque.front().expect("deque holds the current element");
            if pos != last_pos {
                out.push(val);
                last_pos = pos;
            }
        }
    }
    if len == 0 {
        return Vec::new();
    }
    if len < window {
        // Short input: single global rightmost minimum, like `winnow`.
        let &(_, val) = deque.front().expect("non-empty input fills the deque");
        return vec![val];
    }
    out
}

fn rightmost_min(window: &[u32]) -> (usize, u32) {
    let mut best = 0;
    for (i, &v) in window.iter().enumerate() {
        if v <= window[best] {
            best = i;
        }
    }
    (best, window[best])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn empty_input_yields_nothing() {
        assert!(winnow(&[], 4).is_empty());
    }

    #[test]
    fn short_input_yields_single_minimum() {
        assert_eq!(winnow(&[9, 3, 7], 4), vec![3]);
        assert_eq!(winnow(&[5], 4), vec![5]);
        // Rightmost minimum on ties.
        assert_eq!(winnow(&[3, 9, 3], 4), vec![3]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let _ = winnow(&[1, 2], 0);
    }

    #[test]
    fn window_of_one_selects_everything() {
        assert_eq!(winnow(&[4, 2, 9], 1), vec![4, 2, 9]);
    }

    #[test]
    fn selects_rightmost_minimum_in_each_window() {
        // Window [7, 7]: rightmost 7 selected, so moving to the next
        // window with another 7 re-selects a *new* position.
        let picks = winnow(&[7, 7, 7, 7], 2);
        assert_eq!(picks, vec![7, 7, 7]);
    }

    #[test]
    fn strictly_decreasing_selects_each_new_minimum() {
        let picks = winnow(&[9, 8, 7, 6, 5], 3);
        assert_eq!(picks, vec![7, 6, 5]);
    }

    #[test]
    fn strictly_increasing_selects_leading_minimum_then_window_edges() {
        let picks = winnow(&[1, 2, 3, 4, 5], 3);
        // Window 1 picks 1; windows then pick their left edge as it exits.
        assert_eq!(picks, vec![1, 2, 3]);
    }

    #[test]
    fn density_is_about_two_over_w_plus_one() {
        // Schleimer et al. prove the expected density of winnowing is
        // 2/(w+1) for random hashes.
        let mut x: u32 = 12345;
        let hashes: Vec<u32> = (0..20_000)
            .map(|_| {
                // xorshift for a deterministic pseudo-random stream
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x
            })
            .collect();
        let w = 7;
        let picks = winnow(&hashes, w);
        let density = picks.len() as f64 / hashes.len() as f64;
        let expected = 2.0 / (w as f64 + 1.0);
        assert!(
            (density - expected).abs() < 0.03,
            "density {density:.3}, expected {expected:.3}"
        );
    }

    #[test]
    fn guarantee_shared_run_produces_shared_fingerprint() {
        // Two sequences sharing a run of w consecutive candidates must
        // share at least one selected fingerprint.
        let shared = [42, 17, 98, 50, 23, 61, 11];
        let w = shared.len();
        let mut a = vec![900, 901, 902];
        a.extend_from_slice(&shared);
        a.extend_from_slice(&[903, 904]);
        let mut b = vec![700];
        b.extend_from_slice(&shared);
        b.extend_from_slice(&[701, 702, 703, 704]);
        let pa: HashSet<u32> = winnow(&a, w).into_iter().collect();
        let pb: HashSet<u32> = winnow(&b, w).into_iter().collect();
        assert!(!pa.is_disjoint(&pb), "guarantee violated: {pa:?} vs {pb:?}");
    }

    #[test]
    fn streaming_matches_reference_on_examples() {
        let cases: Vec<(Vec<u32>, usize)> = vec![
            (vec![], 4),
            (vec![5], 4),
            (vec![9, 3, 7], 4),
            (vec![7, 7, 7, 7], 2),
            (vec![9, 8, 7, 6, 5], 3),
            (vec![1, 2, 3, 4, 5], 3),
            (
                vec![
                    77, 74, 42, 17, 98, 50, 17, 98, 8, 88, 67, 39, 77, 74, 42, 17, 98,
                ],
                4,
            ),
        ];
        for (hashes, w) in cases {
            assert_eq!(
                winnow_streaming(hashes.iter().copied(), w),
                winnow(&hashes, w),
                "input {hashes:?} window {w}"
            );
        }
    }

    #[test]
    fn streaming_accepts_iterators() {
        let picks = winnow_streaming((0..100u32).rev(), 5);
        assert_eq!(picks, winnow(&(0..100u32).rev().collect::<Vec<_>>(), 5));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn streaming_zero_window_panics() {
        let _ = winnow_streaming([1u32, 2], 0);
    }

    #[test]
    fn mod_p_sampling_filters_by_residue() {
        let hashes = [0, 3, 4, 8, 9, 12, 16];
        assert_eq!(sample_mod_p(&hashes, 4), vec![0, 4, 8, 12, 16]);
        assert_eq!(sample_mod_p(&hashes, 1).len(), hashes.len());
        assert!(sample_mod_p(&[], 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn mod_zero_panics() {
        let _ = sample_mod_p(&[1], 0);
    }

    proptest! {
        #[test]
        fn prop_every_window_contains_a_selection(
            hashes in proptest::collection::vec(any::<u32>(), 1..200),
            w in 1usize..12,
        ) {
            let picks = winnow(&hashes, w);
            prop_assert!(!picks.is_empty());
            // Reconstruct selected positions by simulating again, then
            // check the coverage guarantee window by window.
            let mut positions = Vec::new();
            if hashes.len() <= w {
                let (mut best, _) = (0usize, hashes[0]);
                for (i, &v) in hashes.iter().enumerate() {
                    if v <= hashes[best] { best = i; }
                }
                positions.push(best);
            } else {
                let mut last = usize::MAX;
                for s in 0..=hashes.len() - w {
                    let mut best = s;
                    for i in s..s + w {
                        if hashes[i] <= hashes[best] { best = i; }
                    }
                    if best != last {
                        positions.push(best);
                        last = best;
                    }
                }
                for s in 0..=hashes.len() - w {
                    prop_assert!(
                        positions.iter().any(|&p| (s..s + w).contains(&p)),
                        "window at {s} has no selection"
                    );
                }
            }
            // And the reported values match the positions.
            let values: Vec<u32> = positions.iter().map(|&p| hashes[p]).collect();
            prop_assert_eq!(picks, values);
        }

        #[test]
        fn prop_selection_is_subset_of_input(
            hashes in proptest::collection::vec(any::<u32>(), 0..100),
            w in 1usize..10,
        ) {
            let input: HashSet<u32> = hashes.iter().copied().collect();
            for v in winnow(&hashes, w) {
                prop_assert!(input.contains(&v));
            }
        }

        #[test]
        fn prop_streaming_equals_reference(
            hashes in proptest::collection::vec(any::<u32>(), 0..300),
            w in 1usize..16,
        ) {
            prop_assert_eq!(winnow_streaming(hashes.iter().copied(), w), winnow(&hashes, w));
        }

        #[test]
        fn prop_streaming_equals_reference_small_alphabet(
            // Small value alphabet maximizes ties, stressing the
            // rightmost-minimum tie-breaking.
            hashes in proptest::collection::vec(0u32..4, 0..200),
            w in 1usize..10,
        ) {
            prop_assert_eq!(winnow_streaming(hashes.iter().copied(), w), winnow(&hashes, w));
        }

        #[test]
        fn prop_mod_p_density(p in 1u32..64) {
            let hashes: Vec<u32> = (0..4096u32).map(|i| i.wrapping_mul(2654435761)).collect();
            let picked = sample_mod_p(&hashes, p).len() as f64;
            let expected = hashes.len() as f64 / p as f64;
            // Loose bound: within a factor of 2 for this deterministic mix.
            prop_assert!(picked <= expected * 2.0 + 8.0);
        }
    }
}
