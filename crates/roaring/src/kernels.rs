//! The raw set-intersection kernels behind every container operation.
//!
//! Two families live here, both shaped for throughput and both shipped
//! alongside a plainly-written **reference implementation** so the
//! differential suite in `tests/kernel_equivalence.rs` can pin the fast
//! path bit-identical to the slow one:
//!
//! * **Sorted-slice kernels** over the `u16` payloads of array
//!   containers. The workhorse is a galloping (exponential-search)
//!   intersection that activates once the longer side is at least
//!   [`GALLOP_RATIO`] times the shorter one — the common shape when a
//!   rare query term meets a hot posting list — and falls back to the
//!   classic linear merge for balanced inputs.
//! * **Word kernels** over the 1024-word bitsets of bitmap containers,
//!   written as fixed 8-word chunks with independent lane accumulators
//!   so LLVM autovectorizes them (no `unsafe`, no intrinsics).
//!
//! All kernels are allocation-free; the visitor variants hand each
//! matching value to a closure so callers can count, copy, or bump an
//! accumulator without materializing the intersection.

/// Gallop when the longer slice is at least this many times the shorter
/// one; below the ratio the linear merge's branch-predictable scan wins.
pub const GALLOP_RATIO: usize = 16;

/// Reference linear-merge intersection visitor (two pointers, one
/// comparison per step). Retained verbatim as the differential baseline
/// for [`intersect_visit`].
pub fn intersect_visit_linear(a: &[u16], b: &[u16], mut f: impl FnMut(u16)) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                f(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// First index `>= base` whose element is `>= x`, found by exponential
/// probing from `base` followed by a binary search of the bracketed
/// window — O(log distance) instead of O(distance).
fn gallop_lower_bound(large: &[u16], base: usize, x: u16) -> usize {
    let mut hop = 1usize;
    while base + hop < large.len() && large[base + hop] < x {
        hop <<= 1;
    }
    // The boundary sits in [base + hop/2, base + hop]: everything before
    // the window start is known `< x` (or the window starts at `base`).
    let lo = base + hop / 2;
    let hi = (base + hop).min(large.len());
    lo + large[lo..hi].partition_point(|&v| v < x)
}

/// Galloping intersection visitor: walks `small` and exponential-searches
/// each value in the unconsumed tail of `large`. Callers pick the sides;
/// [`intersect_visit`] does so by [`GALLOP_RATIO`].
pub fn intersect_visit_gallop(small: &[u16], large: &[u16], mut f: impl FnMut(u16)) {
    let mut base = 0usize;
    for &x in small {
        if base >= large.len() {
            return;
        }
        let i = gallop_lower_bound(large, base, x);
        if i < large.len() && large[i] == x {
            f(x);
            base = i + 1;
        } else {
            base = i;
        }
    }
}

/// Intersection visitor over two sorted slices, dispatching between the
/// linear merge and the galloping scan by size ratio.
pub fn intersect_visit(a: &[u16], b: &[u16], f: impl FnMut(u16)) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.len().saturating_mul(GALLOP_RATIO) < large.len() {
        intersect_visit_gallop(small, large, f);
    } else {
        intersect_visit_linear(small, large, f);
    }
}

/// Sorted intersection of two sorted slices, appended to `out`
/// (not cleared), via [`intersect_visit`].
pub fn intersect_into(a: &[u16], b: &[u16], out: &mut Vec<u16>) {
    intersect_visit(a, b, |x| out.push(x));
}

/// `|a ∩ b|` over two sorted slices, via [`intersect_visit`].
pub fn intersect_len(a: &[u16], b: &[u16]) -> usize {
    let mut n = 0usize;
    intersect_visit(a, b, |_| n += 1);
    n
}

/// Whether every element of the sorted slice `small` occurs in the sorted
/// slice `large` — the galloping subset check, bailing out at the first
/// missing element.
pub fn is_subset_sorted(small: &[u16], large: &[u16]) -> bool {
    if small.len() > large.len() {
        return false;
    }
    let mut base = 0usize;
    for &x in small {
        if base >= large.len() {
            return false;
        }
        let i = gallop_lower_bound(large, base, x);
        if i >= large.len() || large[i] != x {
            return false;
        }
        base = i + 1;
    }
    true
}

/// How many words each vector-friendly chunk spans: eight 64-bit lanes,
/// one cache line, wide enough for LLVM to keep the AND+popcount loop in
/// vector registers.
const CHUNK: usize = 8;

/// Reference scalar popcount of `a & b`, one word at a time. Retained
/// verbatim as the differential baseline for [`and_words_len`].
pub fn and_words_len_scalar(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&wa, &wb)| (wa & wb).count_ones())
        .sum()
}

/// Popcount of `a & b` in 8-word chunks with per-lane accumulators —
/// the autovectorizable form of [`and_words_len_scalar`].
pub fn and_words_len(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0u32; CHUNK];
    let (a_chunks, a_tail) = a.split_at(a.len() - a.len() % CHUNK);
    let (b_chunks, b_tail) = b.split_at(a_chunks.len());
    for (ca, cb) in a_chunks
        .chunks_exact(CHUNK)
        .zip(b_chunks.chunks_exact(CHUNK))
    {
        for i in 0..CHUNK {
            lanes[i] += (ca[i] & cb[i]).count_ones();
        }
    }
    lanes.iter().sum::<u32>() + and_words_len_scalar(a_tail, b_tail)
}

/// Writes `a & b` into `out` and returns its popcount, in the same
/// chunked form as [`and_words_len`].
pub fn and_words_into(a: &[u64], b: &[u64], out: &mut [u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    let mut lanes = [0u32; CHUNK];
    let whole = a.len() - a.len() % CHUNK;
    for ((ca, cb), co) in a[..whole]
        .chunks_exact(CHUNK)
        .zip(b[..whole].chunks_exact(CHUNK))
        .zip(out[..whole].chunks_exact_mut(CHUNK))
    {
        for i in 0..CHUNK {
            let w = ca[i] & cb[i];
            co[i] = w;
            lanes[i] += w.count_ones();
        }
    }
    let mut tail = 0u32;
    for i in whole..a.len() {
        let w = a[i] & b[i];
        out[i] = w;
        tail += w.count_ones();
    }
    lanes.iter().sum::<u32>() + tail
}

/// `min(popcount(a & b), cap)`, counted chunk by chunk and stopping as
/// soon as `cap` is reached, so dense overlaps touch a few cache lines
/// instead of scanning all 8 KiB of both bitsets. Exact below `cap`.
pub fn and_words_len_capped(a: &[u64], b: &[u64], cap: usize) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut count = 0usize;
    let whole = a.len() - a.len() % CHUNK;
    for (ca, cb) in a[..whole]
        .chunks_exact(CHUNK)
        .zip(b[..whole].chunks_exact(CHUNK))
    {
        let mut lane = 0u32;
        for i in 0..CHUNK {
            lane += (ca[i] & cb[i]).count_ones();
        }
        count += lane as usize;
        if count >= cap {
            return cap;
        }
    }
    count += and_words_len_scalar(&a[whole..], &b[whole..]) as usize;
    count.min(cap)
}

/// Whether `a & b` has at least `n` set bits — the early-exit form of
/// [`and_words_len`], via [`and_words_len_capped`].
pub fn and_words_len_at_least(a: &[u64], b: &[u64], n: u32) -> bool {
    and_words_len_capped(a, b, n as usize) >= n as usize
}

/// Whether every set bit of `a` is set in `b` (`a & !b == 0`), checked
/// chunk by chunk with an OR-accumulated miss mask per chunk.
pub fn subset_words(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let whole = a.len() - a.len() % CHUNK;
    for (ca, cb) in a[..whole]
        .chunks_exact(CHUNK)
        .zip(b[..whole].chunks_exact(CHUNK))
    {
        let mut miss = 0u64;
        for i in 0..CHUNK {
            miss |= ca[i] & !cb[i];
        }
        if miss != 0 {
            return false;
        }
    }
    a[whole..]
        .iter()
        .zip(&b[whole..])
        .all(|(&wa, &wb)| wa & !wb == 0)
}

/// Visits every set bit of `a & b` as a value `base | bit_index`, word
/// by word with `trailing_zeros` decoding — the batch-decode feeding the
/// engine's dense overlap accumulator.
pub fn and_words_visit(a: &[u64], b: &[u64], base: u32, mut f: impl FnMut(u32)) {
    debug_assert_eq!(a.len(), b.len());
    for (wi, (&wa, &wb)) in a.iter().zip(b).enumerate() {
        let mut bits = wa & wb;
        let word_base = base | ((wi as u32) << 6);
        while bits != 0 {
            f(word_base | bits.trailing_zeros());
            bits &= bits - 1;
        }
    }
}

/// Visits every set bit of `a` as a value `base | bit_index`, in
/// ascending order.
pub fn words_visit(a: &[u64], base: u32, mut f: impl FnMut(u32)) {
    for (wi, &word) in a.iter().enumerate() {
        let mut bits = word;
        let word_base = base | ((wi as u32) << 6);
        while bits != 0 {
            f(word_base | bits.trailing_zeros());
            bits &= bits - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(a: &[u16], b: &[u16]) -> Vec<u16> {
        let mut out = Vec::new();
        intersect_into(a, b, &mut out);
        out
    }

    #[test]
    fn gallop_matches_linear_on_skewed_inputs() {
        let small: Vec<u16> = vec![3, 900, 901, 40_000];
        let large: Vec<u16> = (0..10_000u16).map(|i| i * 4).collect();
        let mut linear = Vec::new();
        intersect_visit_linear(&small, &large, |x| linear.push(x));
        let mut gallop = Vec::new();
        intersect_visit_gallop(&small, &large, |x| gallop.push(x));
        assert_eq!(linear, gallop);
        assert_eq!(collect(&small, &large), linear);
        assert_eq!(collect(&large, &small), linear);
        assert_eq!(intersect_len(&small, &large), linear.len());
    }

    #[test]
    fn gallop_handles_empty_and_disjoint() {
        assert_eq!(collect(&[], &[1, 2, 3]), Vec::<u16>::new());
        assert_eq!(collect(&[1, 2, 3], &[]), Vec::<u16>::new());
        let mut out = Vec::new();
        intersect_visit_gallop(&[1, 2], &(100..5_000u16).collect::<Vec<_>>(), |x| {
            out.push(x)
        });
        assert!(out.is_empty());
    }

    #[test]
    fn subset_sorted_early_exit_and_exhaustive() {
        let large: Vec<u16> = (0..1_000u16).map(|i| i * 3).collect();
        assert!(is_subset_sorted(&[0, 3, 2_997], &large));
        assert!(!is_subset_sorted(&[0, 4], &large));
        assert!(!is_subset_sorted(&[0, 3, 2_998], &large));
        assert!(is_subset_sorted(&[], &large));
        assert!(!is_subset_sorted(&[1], &[]));
    }

    #[test]
    fn word_kernels_match_scalar_reference() {
        // 1027 words exercises the non-multiple-of-8 tail.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let a: Vec<u64> = (0..1_027).map(|_| step()).collect();
        let b: Vec<u64> = (0..1_027).map(|_| step() & step()).collect();
        let expected = and_words_len_scalar(&a, &b);
        assert_eq!(and_words_len(&a, &b), expected);
        let mut out = vec![0u64; a.len()];
        assert_eq!(and_words_into(&a, &b, &mut out), expected);
        assert_eq!(and_words_len_scalar(&out, &out), expected);
        assert!(and_words_len_at_least(&a, &b, expected));
        assert!(!and_words_len_at_least(&a, &b, expected + 1));
        assert!(and_words_len_at_least(&a, &b, 0));
        assert!(subset_words(&out, &a));
        assert!(subset_words(&out, &b));
        if expected > 0 {
            assert!(!subset_words(&a, &out) || and_words_len_scalar(&a, &a) == expected);
        }
        let mut visited = 0u32;
        and_words_visit(&a, &b, 0, |_| visited += 1);
        assert_eq!(visited, expected);
    }
}
