//! Compact on-wire encoding of a [`RoaringBitmap`].
//!
//! The snapshot layer (`geodabs_index::store`) persists posting lists as
//! bitmaps, so loading an index must materialize each bitmap directly
//! instead of replaying inserts. The format mirrors the in-memory layout,
//! all little-endian:
//!
//! ```text
//! n_containers  u32
//! container*    key u16, cardinality−1 u16, payload
//! ```
//!
//! The payload representation is implied by the cardinality — at most
//! `ARRAY_MAX` (4096) values: a sorted `u16` array; more: the
//! raw 1024 × `u64` bitset — so every bitmap has exactly one encoding and
//! `serialize ∘ deserialize ≡ id` on the bytes as well as the set.
//! Decoding validates everything it reads (container keys strictly
//! ascending, arrays strictly sorted, bitset population counts matching
//! the framed cardinality) and returns a [`WireError`] instead of
//! panicking on malformed input.

use crate::container::Container;
use crate::RoaringBitmap;
use std::error::Error;
use std::fmt;

/// Errors decoding a serialized bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the encoded bitmap did.
    Truncated,
    /// The input is structurally invalid (unsorted keys or values,
    /// cardinality mismatch).
    Corrupt(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated roaring bitmap data"),
            WireError::Corrupt(what) => write!(f, "corrupt roaring bitmap data: {what}"),
        }
    }
}

impl Error for WireError {}

impl RoaringBitmap {
    /// Exact number of bytes [`RoaringBitmap::serialize_into`] appends.
    pub fn serialized_size(&self) -> usize {
        4 + self
            .containers
            .iter()
            .map(|(_, c)| 4 + c.wire_size())
            .sum::<usize>()
    }

    /// Appends the canonical wire form of the bitmap to `out`. See the
    /// [module docs](self) for the layout.
    ///
    /// ```
    /// use geodabs_roaring::RoaringBitmap;
    ///
    /// let bm: RoaringBitmap = [1u32, 2, 100_000].into_iter().collect();
    /// let mut bytes = Vec::new();
    /// bm.serialize_into(&mut bytes);
    /// assert_eq!(bytes.len(), bm.serialized_size());
    /// let (back, used) = RoaringBitmap::deserialize_from(&bytes).unwrap();
    /// assert_eq!(back, bm);
    /// assert_eq!(used, bytes.len());
    /// ```
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.serialized_size());
        out.extend_from_slice(&(self.containers.len() as u32).to_le_bytes());
        for (key, container) in &self.containers {
            out.extend_from_slice(&key.to_le_bytes());
            debug_assert!(!container.is_empty(), "empty containers are never stored");
            out.extend_from_slice(&((container.len() as u16).wrapping_sub(1)).to_le_bytes());
            container.write_wire(out);
        }
    }

    /// Decodes a bitmap from the front of `data`, returning it together
    /// with the number of bytes consumed (the framing is self-delimiting,
    /// so callers can pack bitmaps back to back).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated or structurally invalid input;
    /// a successful decode is always a canonical, internally consistent
    /// bitmap.
    pub fn deserialize_from(data: &[u8]) -> Result<(RoaringBitmap, usize), WireError> {
        let take = |at: usize, n: usize| -> Result<&[u8], WireError> {
            data.get(at..at + n).ok_or(WireError::Truncated)
        };
        let n_containers = u32::from_le_bytes(take(0, 4)?.try_into().expect("4 bytes")) as usize;
        let mut at = 4;
        let mut containers: Vec<(u16, Container)> = Vec::new();
        // Don't trust the count for preallocation: a crafted header could
        // claim 2^32 containers against a tiny payload.
        for _ in 0..n_containers {
            let key = u16::from_le_bytes(take(at, 2)?.try_into().expect("2 bytes"));
            let cardinality =
                u16::from_le_bytes(take(at + 2, 2)?.try_into().expect("2 bytes")) as usize + 1;
            at += 4;
            if let Some(&(last, _)) = containers.last() {
                if last >= key {
                    return Err(WireError::Corrupt("container keys not strictly ascending"));
                }
            }
            let (container, used) =
                Container::read_wire(&data[at..], cardinality).map_err(|what| {
                    if what.starts_with("truncated") {
                        WireError::Truncated
                    } else {
                        WireError::Corrupt(what)
                    }
                })?;
            at += used;
            containers.push((key, container));
        }
        Ok((RoaringBitmap { containers }, at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(bm: &RoaringBitmap) -> RoaringBitmap {
        let mut bytes = Vec::new();
        bm.serialize_into(&mut bytes);
        assert_eq!(bytes.len(), bm.serialized_size());
        let (back, used) = RoaringBitmap::deserialize_from(&bytes).expect("roundtrip");
        assert_eq!(used, bytes.len());
        back
    }

    #[test]
    fn empty_and_small_bitmaps_roundtrip() {
        assert_eq!(roundtrip(&RoaringBitmap::new()), RoaringBitmap::new());
        let small: RoaringBitmap = [0u32, 1, 65_535, 65_536, u32::MAX].into_iter().collect();
        assert_eq!(roundtrip(&small), small);
    }

    #[test]
    fn dense_chunks_roundtrip_through_the_bitset_payload() {
        // Straddles the array→bitset boundary within one chunk and spills
        // into a second chunk.
        let dense: RoaringBitmap = (0..70_000u32).collect();
        assert_eq!(roundtrip(&dense), dense);
        // A full chunk exercises the cardinality−1 framing (65 536 does
        // not fit in a u16).
        let full: RoaringBitmap = (0..65_536u32).collect();
        assert_eq!(roundtrip(&full), full);
    }

    #[test]
    fn encoding_is_deterministic_and_canonical() {
        let a: RoaringBitmap = (0..10_000u32).map(|i| i * 7).collect();
        let mut x = Vec::new();
        let mut y = Vec::new();
        a.serialize_into(&mut x);
        roundtrip(&a).serialize_into(&mut y);
        assert_eq!(x, y, "serialize ∘ deserialize is the identity on bytes");
    }

    #[test]
    fn truncation_and_garbage_error_instead_of_panicking() {
        let bm: RoaringBitmap = (0..9_000u32).collect();
        let mut bytes = Vec::new();
        bm.serialize_into(&mut bytes);
        for cut in [0, 1, 3, 4, 5, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                RoaringBitmap::deserialize_from(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
        // A count claiming far more containers than the payload holds.
        assert_eq!(
            RoaringBitmap::deserialize_from(&u32::MAX.to_le_bytes()),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn unsorted_input_is_rejected() {
        // Two containers with non-ascending keys.
        let a: RoaringBitmap = [1u32, 65_537].into_iter().collect();
        let mut bytes = Vec::new();
        a.serialize_into(&mut bytes);
        // Swap the two container keys (key at offset 4, next key follows
        // the first container's 2-byte payload at offset 4+4+2).
        bytes.swap(4, 10);
        assert!(matches!(
            RoaringBitmap::deserialize_from(&bytes),
            Err(WireError::Corrupt(_))
        ));
    }

    proptest! {
        #[test]
        fn prop_roundtrip_preserves_the_set(
            xs in proptest::collection::vec(any::<u32>(), 0..600),
        ) {
            let bm: RoaringBitmap = xs.iter().copied().collect();
            let back = roundtrip(&bm);
            prop_assert_eq!(&back, &bm);
            prop_assert_eq!(
                back.iter().collect::<Vec<_>>(),
                bm.iter().collect::<Vec<_>>()
            );
        }

        #[test]
        fn prop_bitflips_never_panic(
            xs in proptest::collection::vec(0u32..100_000, 1..300),
            offset_seed in 0usize..10_000,
            xor in 1u8..=255,
        ) {
            let bm: RoaringBitmap = xs.iter().copied().collect();
            let mut bytes = Vec::new();
            bm.serialize_into(&mut bytes);
            let offset = offset_seed % bytes.len();
            bytes[offset] ^= xor;
            match RoaringBitmap::deserialize_from(&bytes) {
                Ok((decoded, used)) => {
                    prop_assert!(used <= bytes.len());
                    // Whatever decoded is internally consistent.
                    prop_assert_eq!(decoded.iter().count() as u64, decoded.len());
                }
                Err(e) => prop_assert!(!e.to_string().is_empty()),
            }
        }

        #[test]
        fn prop_truncation_never_panics(
            xs in proptest::collection::vec(0u32..100_000, 0..300),
            cut_seed in 0usize..10_000,
        ) {
            let bm: RoaringBitmap = xs.iter().copied().collect();
            let mut bytes = Vec::new();
            bm.serialize_into(&mut bytes);
            let cut = cut_seed % (bytes.len() + 1);
            if let Ok((decoded, used)) = RoaringBitmap::deserialize_from(&bytes[..cut]) {
                // A shorter valid prefix can only happen when the cut
                // kept the whole encoding.
                prop_assert_eq!(used, bytes.len());
                prop_assert_eq!(decoded, bm);
            }
        }
    }
}
