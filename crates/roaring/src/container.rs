//! The two container kinds of a roaring bitmap.
//!
//! A roaring bitmap partitions the `u32` space into 2^16 chunks keyed by the
//! high 16 bits. Each non-empty chunk stores its low 16 bits either as a
//! sorted array (sparse chunks, up to [`ARRAY_MAX`] entries) or as a 2^16-bit
//! bitset (dense chunks), following Lemire et al., "Roaring Bitmaps:
//! Implementation of an Optimized Software Library" (the paper's ref \[19\]).

use crate::kernels;

/// A sparse container converts to a bitmap once it exceeds this many values;
/// past this point the bitset (8 KiB) is smaller than the array.
pub(crate) const ARRAY_MAX: usize = 4096;

const WORDS: usize = 1024;

/// Fixed 2^16-bit bitset with a cached cardinality.
#[derive(Clone)]
pub(crate) struct BitmapStore {
    words: Box<[u64; WORDS]>,
    cardinality: u32,
}

impl BitmapStore {
    fn new() -> Self {
        BitmapStore {
            words: Box::new([0u64; WORDS]),
            cardinality: 0,
        }
    }

    fn contains(&self, low: u16) -> bool {
        self.words[(low >> 6) as usize] & (1u64 << (low & 63)) != 0
    }

    fn insert(&mut self, low: u16) -> bool {
        let w = &mut self.words[(low >> 6) as usize];
        let mask = 1u64 << (low & 63);
        if *w & mask == 0 {
            *w |= mask;
            self.cardinality += 1;
            true
        } else {
            false
        }
    }

    fn remove(&mut self, low: u16) -> bool {
        let w = &mut self.words[(low >> 6) as usize];
        let mask = 1u64 << (low & 63);
        if *w & mask != 0 {
            *w &= !mask;
            self.cardinality -= 1;
            true
        } else {
            false
        }
    }

    fn to_array(&self) -> Vec<u16> {
        let mut out = Vec::with_capacity(self.cardinality as usize);
        for (wi, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let bit = bits.trailing_zeros();
                out.push((wi as u16) << 6 | bit as u16);
                bits &= bits - 1;
            }
        }
        out
    }
}

/// A single 16-bit-keyed chunk of a roaring bitmap.
#[derive(Clone)]
pub(crate) enum Container {
    /// Sorted array of low 16-bit values (sparse).
    Array(Vec<u16>),
    /// 65536-bit bitset (dense).
    Bitmap(BitmapStore),
}

impl Container {
    pub(crate) fn new() -> Container {
        Container::Array(Vec::new())
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            Container::Array(v) => v.len(),
            Container::Bitmap(b) => b.cardinality as usize,
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn contains(&self, low: u16) -> bool {
        match self {
            Container::Array(v) => v.binary_search(&low).is_ok(),
            Container::Bitmap(b) => b.contains(low),
        }
    }

    /// Inserts a value; returns whether it was newly added. Upgrades to a
    /// bitmap container past [`ARRAY_MAX`] values.
    pub(crate) fn insert(&mut self, low: u16) -> bool {
        match self {
            Container::Array(v) => match v.binary_search(&low) {
                Ok(_) => false,
                Err(pos) => {
                    if v.len() < ARRAY_MAX {
                        v.insert(pos, low);
                    } else {
                        let mut bm = BitmapStore::new();
                        for &x in v.iter() {
                            bm.insert(x);
                        }
                        bm.insert(low);
                        *self = Container::Bitmap(bm);
                    }
                    true
                }
            },
            Container::Bitmap(b) => b.insert(low),
        }
    }

    /// Removes a value; returns whether it was present. Downgrades to an
    /// array container when the cardinality drops back to [`ARRAY_MAX`].
    pub(crate) fn remove(&mut self, low: u16) -> bool {
        match self {
            Container::Array(v) => match v.binary_search(&low) {
                Ok(pos) => {
                    v.remove(pos);
                    true
                }
                Err(_) => false,
            },
            Container::Bitmap(b) => {
                let removed = b.remove(low);
                if removed && (b.cardinality as usize) <= ARRAY_MAX {
                    *self = Container::Array(b.to_array());
                }
                removed
            }
        }
    }

    /// Sorted vector of the contained low values.
    pub(crate) fn to_sorted_vec(&self) -> Vec<u16> {
        match self {
            Container::Array(v) => v.clone(),
            Container::Bitmap(b) => b.to_array(),
        }
    }

    /// Builds the best-fitting container from a sorted, deduplicated vector.
    pub(crate) fn from_sorted_vec(values: Vec<u16>) -> Container {
        debug_assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "input must be strictly sorted"
        );
        if values.len() <= ARRAY_MAX {
            Container::Array(values)
        } else {
            let mut bm = BitmapStore::new();
            for v in values {
                bm.insert(v);
            }
            Container::Bitmap(bm)
        }
    }

    /// Number of values `<= low` in this container.
    pub(crate) fn rank(&self, low: u16) -> usize {
        match self {
            Container::Array(v) => match v.binary_search(&low) {
                Ok(i) => i + 1,
                Err(i) => i,
            },
            Container::Bitmap(b) => {
                let word_idx = (low >> 6) as usize;
                let mut count: usize = b.words[..word_idx]
                    .iter()
                    .map(|w| w.count_ones() as usize)
                    .sum();
                let bit = low & 63;
                let mask = if bit == 63 {
                    u64::MAX
                } else {
                    (1u64 << (bit + 1)) - 1
                };
                count += (b.words[word_idx] & mask).count_ones() as usize;
                count
            }
        }
    }

    /// The `n`-th smallest value (0-based), if it exists.
    pub(crate) fn select(&self, n: usize) -> Option<u16> {
        match self {
            Container::Array(v) => v.get(n).copied(),
            Container::Bitmap(b) => {
                if n >= b.cardinality as usize {
                    return None;
                }
                let mut remaining = n;
                for (wi, &word) in b.words.iter().enumerate() {
                    let ones = word.count_ones() as usize;
                    if remaining < ones {
                        // Find the (remaining)-th set bit of `word`.
                        let mut bits = word;
                        for _ in 0..remaining {
                            bits &= bits - 1;
                        }
                        let bit = bits.trailing_zeros() as u16;
                        return Some((wi as u16) << 6 | bit);
                    }
                    remaining -= ones;
                }
                unreachable!("cardinality bound checked above")
            }
        }
    }

    pub(crate) fn and(&self, other: &Container) -> Container {
        match (self, other) {
            (Container::Array(a), Container::Array(b)) => Container::Array(intersect_sorted(a, b)),
            (Container::Array(a), Container::Bitmap(b)) => {
                Container::Array(a.iter().copied().filter(|&x| b.contains(x)).collect())
            }
            (Container::Bitmap(_), Container::Array(_)) => other.and(self),
            (Container::Bitmap(a), Container::Bitmap(b)) => {
                // A cheap vectorized popcount pass picks the result
                // representation up front, so the dense case writes the
                // bitset exactly once and the sparse case decodes
                // straight into a right-sized array — no 8 KiB scratch
                // bitset plus second materialization either way.
                let card = kernels::and_words_len(&a.words[..], &b.words[..]);
                if card as usize <= ARRAY_MAX {
                    let mut values = Vec::with_capacity(card as usize);
                    kernels::and_words_visit(&a.words[..], &b.words[..], 0, |v| {
                        values.push(v as u16)
                    });
                    Container::Array(values)
                } else {
                    let mut bm = BitmapStore::new();
                    let written =
                        kernels::and_words_into(&a.words[..], &b.words[..], &mut bm.words[..]);
                    debug_assert_eq!(written, card);
                    bm.cardinality = card;
                    Container::Bitmap(bm)
                }
            }
        }
    }

    /// Writes the sorted intersection of two containers into `out`
    /// (cleared first) — the allocation-free variant of
    /// [`Container::and`] for iteration hot paths that reuse one buffer.
    pub(crate) fn and_into(&self, other: &Container, out: &mut Vec<u16>) {
        out.clear();
        match (self, other) {
            (Container::Array(a), Container::Array(b)) => {
                kernels::intersect_into(a, b, out);
            }
            (Container::Array(a), Container::Bitmap(b)) => {
                out.extend(a.iter().copied().filter(|&x| b.contains(x)));
            }
            (Container::Bitmap(_), Container::Array(_)) => other.and_into(self, out),
            (Container::Bitmap(a), Container::Bitmap(b)) => {
                kernels::and_words_visit(&a.words[..], &b.words[..], 0, |v| out.push(v as u16));
            }
        }
    }

    pub(crate) fn and_len(&self, other: &Container) -> usize {
        match (self, other) {
            (Container::Array(a), Container::Array(b)) => kernels::intersect_len(a, b),
            (Container::Array(a), Container::Bitmap(b)) => {
                a.iter().filter(|&&x| b.contains(x)).count()
            }
            (Container::Bitmap(_), Container::Array(_)) => other.and_len(self),
            (Container::Bitmap(a), Container::Bitmap(b)) => {
                // The plain scalar loop beats the 8-lane chunked form
                // here: rustc already emits hardware popcnt for it, and
                // the chunked version's lane bookkeeping costs more than
                // it saves on 1 KiB inputs. The chunked kernel stays as
                // the bench/reference pair (`crit_kernels`).
                kernels::and_words_len_scalar(&a.words[..], &b.words[..]) as usize
            }
        }
    }

    /// `min(|self ∩ other|, cap)`: exact when the intersection is smaller
    /// than `cap`, and stops counting once `cap` is reached — the
    /// building block of [`crate::RoaringBitmap::intersection_len_at_least`].
    pub(crate) fn and_len_capped(&self, other: &Container, cap: usize) -> usize {
        match (self, other) {
            // Array payloads are at most ARRAY_MAX entries; the full
            // galloping count is already cheap.
            (Container::Array(_), Container::Array(_)) => self.and_len(other).min(cap),
            (Container::Array(a), Container::Bitmap(b)) => {
                let mut n = 0usize;
                for &x in a {
                    if b.contains(x) {
                        n += 1;
                        if n >= cap {
                            return cap;
                        }
                    }
                }
                n
            }
            (Container::Bitmap(_), Container::Array(_)) => other.and_len_capped(self, cap),
            (Container::Bitmap(a), Container::Bitmap(b)) => {
                kernels::and_words_len_capped(&a.words[..], &b.words[..], cap)
            }
        }
    }

    /// Calls `f` with `base | low` for every value, ascending, without
    /// materializing a vector (unlike [`Container::to_sorted_vec`]).
    pub(crate) fn for_each(&self, base: u32, f: &mut impl FnMut(u32)) {
        match self {
            Container::Array(v) => {
                for &low in v {
                    f(base | low as u32);
                }
            }
            Container::Bitmap(b) => kernels::words_visit(&b.words[..], base, f),
        }
    }

    /// Calls `f` with `base | low` for every value of `self ∩ other`,
    /// ascending — the non-allocating intersection visitor behind
    /// [`crate::RoaringBitmap::intersection_for_each`].
    pub(crate) fn and_for_each(&self, other: &Container, base: u32, f: &mut impl FnMut(u32)) {
        match (self, other) {
            (Container::Array(a), Container::Array(b)) => {
                kernels::intersect_visit(a, b, |x| f(base | x as u32));
            }
            (Container::Array(a), Container::Bitmap(b))
            | (Container::Bitmap(b), Container::Array(a)) => {
                for &x in a {
                    if b.contains(x) {
                        f(base | x as u32);
                    }
                }
            }
            (Container::Bitmap(a), Container::Bitmap(b)) => {
                kernels::and_words_visit(&a.words[..], &b.words[..], base, f);
            }
        }
    }

    pub(crate) fn or(&self, other: &Container) -> Container {
        match (self, other) {
            (Container::Array(a), Container::Array(b)) => {
                Container::from_sorted_vec(union_sorted(a, b))
            }
            (Container::Array(a), Container::Bitmap(b)) => {
                let mut bm = b.clone();
                for &x in a {
                    bm.insert(x);
                }
                Container::Bitmap(bm)
            }
            (Container::Bitmap(_), Container::Array(_)) => other.or(self),
            (Container::Bitmap(a), Container::Bitmap(b)) => {
                let mut bm = BitmapStore::new();
                let mut card = 0u32;
                for i in 0..WORDS {
                    let w = a.words[i] | b.words[i];
                    bm.words[i] = w;
                    card += w.count_ones();
                }
                bm.cardinality = card;
                Container::Bitmap(bm)
            }
        }
    }

    pub(crate) fn sub(&self, other: &Container) -> Container {
        match (self, other) {
            (Container::Array(a), _) => {
                Container::Array(a.iter().copied().filter(|&x| !other.contains(x)).collect())
            }
            (Container::Bitmap(a), Container::Array(b)) => {
                let mut bm = a.clone();
                for &x in b {
                    bm.remove(x);
                }
                if bm.cardinality as usize <= ARRAY_MAX {
                    Container::Array(bm.to_array())
                } else {
                    Container::Bitmap(bm)
                }
            }
            (Container::Bitmap(a), Container::Bitmap(b)) => {
                let mut bm = BitmapStore::new();
                let mut card = 0u32;
                for i in 0..WORDS {
                    let w = a.words[i] & !b.words[i];
                    bm.words[i] = w;
                    card += w.count_ones();
                }
                bm.cardinality = card;
                if card as usize <= ARRAY_MAX {
                    Container::Array(bm.to_array())
                } else {
                    Container::Bitmap(bm)
                }
            }
        }
    }

    pub(crate) fn xor(&self, other: &Container) -> Container {
        match (self, other) {
            (Container::Array(a), Container::Array(b)) => {
                Container::from_sorted_vec(xor_sorted(a, b))
            }
            (Container::Array(_), Container::Bitmap(_)) => other.xor(self),
            (Container::Bitmap(a), Container::Array(b)) => {
                let mut bm = a.clone();
                for &x in b {
                    if !bm.remove(x) {
                        bm.insert(x);
                    }
                }
                if bm.cardinality as usize <= ARRAY_MAX {
                    Container::Array(bm.to_array())
                } else {
                    Container::Bitmap(bm)
                }
            }
            (Container::Bitmap(a), Container::Bitmap(b)) => {
                let mut bm = BitmapStore::new();
                let mut card = 0u32;
                for i in 0..WORDS {
                    let w = a.words[i] ^ b.words[i];
                    bm.words[i] = w;
                    card += w.count_ones();
                }
                bm.cardinality = card;
                if card as usize <= ARRAY_MAX {
                    Container::Array(bm.to_array())
                } else {
                    Container::Bitmap(bm)
                }
            }
        }
    }

    /// Bytes [`Container::write_wire`] will append for this container's
    /// payload (excluding the key and cardinality fields the bitmap-level
    /// framing writes).
    pub(crate) fn wire_size(&self) -> usize {
        match self {
            Container::Array(v) => 2 * v.len(),
            Container::Bitmap(_) => 8 * WORDS,
        }
    }

    /// Appends the container payload in its canonical wire form: sorted
    /// `u16` little-endian values for arrays, the raw 1024-word bitset for
    /// bitmaps. The representation is implied by the cardinality (arrays
    /// hold at most [`ARRAY_MAX`] values), so no kind tag is written.
    pub(crate) fn write_wire(&self, out: &mut Vec<u8>) {
        match self {
            Container::Array(v) => {
                for &low in v {
                    out.extend_from_slice(&low.to_le_bytes());
                }
            }
            Container::Bitmap(b) => {
                for &word in b.words.iter() {
                    out.extend_from_slice(&word.to_le_bytes());
                }
            }
        }
    }

    /// Reads a container payload of the given cardinality back, returning
    /// it plus the number of bytes consumed. Rejects (rather than panics
    /// on) every malformed input: short payloads, unsorted arrays, and
    /// bitsets whose population count disagrees with the framed
    /// cardinality.
    pub(crate) fn read_wire(
        data: &[u8],
        cardinality: usize,
    ) -> Result<(Container, usize), &'static str> {
        if cardinality == 0 {
            return Err("empty container");
        }
        if cardinality <= ARRAY_MAX {
            let need = 2 * cardinality;
            if data.len() < need {
                return Err("truncated array container");
            }
            let values: Vec<u16> = data[..need]
                .chunks_exact(2)
                .map(|c| u16::from_le_bytes([c[0], c[1]]))
                .collect();
            if !values.windows(2).all(|w| w[0] < w[1]) {
                return Err("array container not strictly sorted");
            }
            Ok((Container::Array(values), need))
        } else {
            let need = 8 * WORDS;
            if data.len() < need {
                return Err("truncated bitmap container");
            }
            let mut store = BitmapStore::new();
            let mut popcount = 0u32;
            for (wi, chunk) in data[..need].chunks_exact(8).enumerate() {
                let word = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
                store.words[wi] = word;
                popcount += word.count_ones();
            }
            if popcount as usize != cardinality {
                return Err("bitmap cardinality mismatch");
            }
            store.cardinality = popcount;
            Ok((Container::Bitmap(store), need))
        }
    }

    pub(crate) fn is_subset(&self, other: &Container) -> bool {
        if self.len() > other.len() {
            return false;
        }
        match (self, other) {
            (Container::Array(a), Container::Array(b)) => kernels::is_subset_sorted(a, b),
            (Container::Array(a), Container::Bitmap(b)) => a.iter().all(|&x| b.contains(x)),
            (Container::Bitmap(a), Container::Bitmap(b)) => {
                kernels::subset_words(&a.words[..], &b.words[..])
            }
            // A bitmap container has > ARRAY_MAX entries, an array container
            // at most ARRAY_MAX, so the len() guard above already returned.
            (Container::Bitmap(_), Container::Array(_)) => false,
        }
    }
}

fn intersect_sorted(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    kernels::intersect_into(a, b, &mut out);
    out
}

fn union_sorted(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn xor_sorted(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array(values: &[u16]) -> Container {
        let mut c = Container::new();
        for &v in values {
            c.insert(v);
        }
        c
    }

    fn dense(n: usize) -> Container {
        let mut c = Container::new();
        for v in 0..n as u32 {
            c.insert(v as u16);
        }
        c
    }

    #[test]
    fn insert_contains_remove_array() {
        let mut c = Container::new();
        assert!(c.insert(5));
        assert!(!c.insert(5));
        assert!(c.contains(5));
        assert!(!c.contains(6));
        assert!(c.remove(5));
        assert!(!c.remove(5));
        assert!(c.is_empty());
    }

    #[test]
    fn upgrades_to_bitmap_and_back() {
        let mut c = dense(ARRAY_MAX);
        assert!(matches!(c, Container::Array(_)));
        c.insert(60000);
        assert!(matches!(c, Container::Bitmap(_)));
        assert_eq!(c.len(), ARRAY_MAX + 1);
        assert!(c.contains(60000));
        assert!(c.remove(60000));
        assert!(matches!(c, Container::Array(_)));
        assert_eq!(c.len(), ARRAY_MAX);
    }

    #[test]
    fn to_sorted_vec_is_sorted_for_both_kinds() {
        let c = array(&[9, 1, 5]);
        assert_eq!(c.to_sorted_vec(), vec![1, 5, 9]);
        let c = dense(ARRAY_MAX + 10);
        let v = c.to_sorted_vec();
        assert_eq!(v.len(), ARRAY_MAX + 10);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn and_across_kinds() {
        let a = array(&[1, 2, 3, 100]);
        let b = array(&[2, 100, 200]);
        assert_eq!(a.and(&b).to_sorted_vec(), vec![2, 100]);
        let big = dense(ARRAY_MAX + 100);
        assert_eq!(a.and(&big).to_sorted_vec(), vec![1, 2, 3, 100]);
        assert_eq!(big.and(&a).to_sorted_vec(), vec![1, 2, 3, 100]);
        let big2 = dense(ARRAY_MAX + 200);
        let i = big.and(&big2);
        assert_eq!(i.len(), ARRAY_MAX + 100);
    }

    #[test]
    fn and_len_matches_and() {
        let cases = [
            (array(&[1, 2, 3]), array(&[2, 3, 4])),
            (array(&[1, 2, 3]), dense(ARRAY_MAX + 50)),
            (dense(ARRAY_MAX + 50), dense(ARRAY_MAX + 500)),
        ];
        for (a, b) in cases {
            assert_eq!(a.and_len(&b), a.and(&b).len());
            assert_eq!(b.and_len(&a), a.and_len(&b));
        }
    }

    #[test]
    fn or_across_kinds() {
        let a = array(&[1, 3]);
        let b = array(&[2, 3]);
        assert_eq!(a.or(&b).to_sorted_vec(), vec![1, 2, 3]);
        let big = dense(ARRAY_MAX + 100);
        let u = a.or(&big);
        assert_eq!(u.len(), ARRAY_MAX + 100); // 1 and 3 already included
        let x = array(&[60_000]).or(&big);
        assert_eq!(x.len(), ARRAY_MAX + 101);
    }

    #[test]
    fn sub_and_xor() {
        let a = array(&[1, 2, 3]);
        let b = array(&[2, 4]);
        assert_eq!(a.sub(&b).to_sorted_vec(), vec![1, 3]);
        assert_eq!(b.sub(&a).to_sorted_vec(), vec![4]);
        assert_eq!(a.xor(&b).to_sorted_vec(), vec![1, 3, 4]);
        let big = dense(ARRAY_MAX + 100);
        let d = big.sub(&dense(ARRAY_MAX + 100));
        assert!(d.is_empty());
        let x = big.xor(&big);
        assert!(x.is_empty());
    }

    #[test]
    fn bitmap_sub_downgrades() {
        let big = dense(ARRAY_MAX + 100);
        let d = big.sub(&dense(200));
        assert!(matches!(d, Container::Array(_)));
        assert_eq!(d.len(), ARRAY_MAX - 100);
    }

    #[test]
    fn subset_relations() {
        let a = array(&[1, 2]);
        let b = array(&[1, 2, 3]);
        let big = dense(ARRAY_MAX + 100);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&big));
        assert!(!big.is_subset(&a));
        assert!(big.is_subset(&dense(ARRAY_MAX + 100)));
        assert!(!dense(ARRAY_MAX + 101).is_subset(&big));
        assert!(Container::new().is_subset(&a));
    }

    #[test]
    fn from_sorted_vec_picks_representation() {
        let small = Container::from_sorted_vec((0..10u16).collect());
        assert!(matches!(small, Container::Array(_)));
        let big = Container::from_sorted_vec((0..(ARRAY_MAX as u16 + 1)).collect());
        assert!(matches!(big, Container::Bitmap(_)));
        assert_eq!(big.len(), ARRAY_MAX + 1);
    }
}
