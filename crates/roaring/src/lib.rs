//! A from-scratch roaring bitmap, the compressed integer-set representation
//! the geodabs paper uses to store fingerprint sets (Section IV-A, ref \[19\]).
//!
//! A [`RoaringBitmap`] stores a set of `u32` values by splitting each value
//! into a high 16-bit *chunk key* and a low 16-bit payload. Sparse chunks
//! keep a sorted array; dense chunks switch to a 65 536-bit bitset. Set
//! algebra (union, intersection, difference, symmetric difference) operates
//! chunk by chunk with word-level bitwise operations, which is what makes
//! Jaccard computations between fingerprint sets cheap.
//!
//! # Examples
//!
//! ```
//! use geodabs_roaring::RoaringBitmap;
//!
//! let a: RoaringBitmap = [1u32, 2, 3, 100_000].into_iter().collect();
//! let b: RoaringBitmap = [2u32, 3, 4, 100_000].into_iter().collect();
//! assert_eq!((&a & &b).len(), 3);
//! assert_eq!((&a | &b).len(), 5);
//! // Jaccard distance = 1 - |A ∩ B| / |A ∪ B| (Equation 1 of the paper).
//! assert!((a.jaccard_distance(&b) - 0.4).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod container;
pub mod kernels;
pub mod wire;

pub use wire::WireError;

use container::Container;
use serde::de::{SeqAccess, Visitor};
use serde::ser::SerializeSeq;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Sub};

/// A compressed bitmap over `u32` values.
///
/// See the [crate-level documentation](crate) for the representation.
#[derive(Clone, Default)]
pub struct RoaringBitmap {
    /// Non-empty containers sorted by chunk key.
    containers: Vec<(u16, Container)>,
}

impl RoaringBitmap {
    /// Creates an empty bitmap.
    pub fn new() -> RoaringBitmap {
        RoaringBitmap::default()
    }

    /// Number of values in the set.
    pub fn len(&self) -> u64 {
        self.containers.iter().map(|(_, c)| c.len() as u64).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.containers.is_empty()
    }

    /// Whether `value` is in the set.
    pub fn contains(&self, value: u32) -> bool {
        let (key, low) = split(value);
        match self.containers.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(idx) => self.containers[idx].1.contains(low),
            Err(_) => false,
        }
    }

    /// Inserts a value; returns whether it was newly added.
    pub fn insert(&mut self, value: u32) -> bool {
        let (key, low) = split(value);
        match self.containers.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(idx) => self.containers[idx].1.insert(low),
            Err(pos) => {
                let mut c = Container::new();
                c.insert(low);
                self.containers.insert(pos, (key, c));
                true
            }
        }
    }

    /// Removes a value; returns whether it was present.
    pub fn remove(&mut self, value: u32) -> bool {
        let (key, low) = split(value);
        match self.containers.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(idx) => {
                let removed = self.containers[idx].1.remove(low);
                if removed && self.containers[idx].1.is_empty() {
                    self.containers.remove(idx);
                }
                removed
            }
            Err(_) => false,
        }
    }

    /// Smallest value in the set.
    pub fn min(&self) -> Option<u32> {
        self.containers.first().map(|(k, c)| {
            join(
                *k,
                *c.to_sorted_vec().first().expect("containers are non-empty"),
            )
        })
    }

    /// Largest value in the set.
    pub fn max(&self) -> Option<u32> {
        self.containers.last().map(|(k, c)| {
            join(
                *k,
                *c.to_sorted_vec().last().expect("containers are non-empty"),
            )
        })
    }

    /// Number of values less than or equal to `value` (the classic
    /// succinct-structure `rank` operation).
    pub fn rank(&self, value: u32) -> u64 {
        let (key, low) = split(value);
        let mut n = 0u64;
        for (k, c) in &self.containers {
            match k.cmp(&key) {
                std::cmp::Ordering::Less => n += c.len() as u64,
                std::cmp::Ordering::Equal => n += c.rank(low) as u64,
                std::cmp::Ordering::Greater => break,
            }
        }
        n
    }

    /// The `n`-th smallest value (0-based), if the set has more than `n`
    /// values (the `select` operation, inverse of [`RoaringBitmap::rank`]).
    pub fn select(&self, n: u64) -> Option<u32> {
        let mut remaining = n;
        for (k, c) in &self.containers {
            let len = c.len() as u64;
            if remaining < len {
                let low = c.select(remaining as usize).expect("bound checked");
                return Some(join(*k, low));
            }
            remaining -= len;
        }
        None
    }

    /// Iterates over the values in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            bitmap: self,
            container_idx: 0,
            values: Vec::new(),
            value_idx: 0,
        }
    }

    /// Unions `other` into `self` in place, container by container —
    /// the allocation-free way to accumulate a candidate set from many
    /// posting lists (also available as `|=`).
    pub fn union_with(&mut self, other: &RoaringBitmap) {
        let mut i = 0;
        for (key, cb) in &other.containers {
            // Keys of both bitmaps are sorted, so resume the scan where the
            // previous container landed instead of searching from scratch.
            while i < self.containers.len() && self.containers[i].0 < *key {
                i += 1;
            }
            if i < self.containers.len() && self.containers[i].0 == *key {
                let merged = self.containers[i].1.or(cb);
                self.containers[i].1 = merged;
            } else {
                self.containers.insert(i, (*key, cb.clone()));
            }
            i += 1;
        }
    }

    /// Iterates over `self ∩ other` in ascending order without
    /// materializing the intersection — the fast path of the query
    /// engine's increment-only scan, which visits only posting entries
    /// that are already candidates.
    pub fn intersection_iter<'a>(&'a self, other: &'a RoaringBitmap) -> IntersectionIter<'a> {
        IntersectionIter {
            a: &self.containers,
            b: &other.containers,
            i: 0,
            j: 0,
            values: Vec::new(),
            value_idx: 0,
            key: 0,
        }
    }

    /// Calls `f` for every value of the set in ascending order without
    /// allocating — bitmap containers are decoded word at a time straight
    /// into the callback, so this is the fast way to bulk-feed an
    /// accumulator (the query engine's admit phase).
    pub fn for_each(&self, mut f: impl FnMut(u32)) {
        for (key, c) in &self.containers {
            c.for_each((*key as u32) << 16, &mut f);
        }
    }

    /// Calls `f` for every value of `self ∩ other` in ascending order
    /// without materializing the intersection — the non-allocating visitor
    /// form of [`RoaringBitmap::intersection_iter`]. Array∩array pairs use
    /// a galloping search when one side is much smaller; bitmap∩bitmap
    /// pairs AND words and decode set bits directly into the callback.
    pub fn intersection_for_each(&self, other: &RoaringBitmap, mut f: impl FnMut(u32)) {
        let (mut i, mut j) = (0, 0);
        while i < self.containers.len() && j < other.containers.len() {
            let (ka, ca) = &self.containers[i];
            let (kb, cb) = &other.containers[j];
            match ka.cmp(kb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    ca.and_for_each(cb, (*ka as u32) << 16, &mut f);
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    /// Whether `|self ∩ other| >= n`, stopping as soon as the answer is
    /// known instead of counting the full intersection.
    pub fn intersection_len_at_least(&self, other: &RoaringBitmap, n: u64) -> bool {
        if n == 0 {
            return true;
        }
        let mut needed = n;
        let (mut i, mut j) = (0, 0);
        while i < self.containers.len() && j < other.containers.len() {
            match self.containers[i].0.cmp(&other.containers[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Counting is capped at `needed`, so a hit in a dense
                    // pair returns after a few cache lines.
                    let cap = needed.min(usize::MAX as u64) as usize;
                    let got = self.containers[i]
                        .1
                        .and_len_capped(&other.containers[j].1, cap);
                    if got as u64 >= needed {
                        return true;
                    }
                    needed -= got as u64;
                    i += 1;
                    j += 1;
                }
            }
        }
        false
    }

    /// `|self ∩ other|` without materializing the intersection.
    pub fn intersection_len(&self, other: &RoaringBitmap) -> u64 {
        let mut n = 0u64;
        let (mut i, mut j) = (0, 0);
        while i < self.containers.len() && j < other.containers.len() {
            match self.containers[i].0.cmp(&other.containers[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += self.containers[i].1.and_len(&other.containers[j].1) as u64;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// `|self ∪ other|` via the inclusion–exclusion identity.
    pub fn union_len(&self, other: &RoaringBitmap) -> u64 {
        self.len() + other.len() - self.intersection_len(other)
    }

    /// The Jaccard coefficient `|A ∩ B| / |A ∪ B|`, `1.0` for two empty sets.
    pub fn jaccard(&self, other: &RoaringBitmap) -> f64 {
        let inter = self.intersection_len(other);
        let union = self.len() + other.len() - inter;
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// The Jaccard distance `1 − J(A, B)` (Equation 1 of the paper), which
    /// obeys the triangle inequality.
    pub fn jaccard_distance(&self, other: &RoaringBitmap) -> f64 {
        1.0 - self.jaccard(other)
    }

    /// Whether every value of `self` is in `other`.
    pub fn is_subset(&self, other: &RoaringBitmap) -> bool {
        self.containers.iter().all(|(k, c)| {
            match other.containers.binary_search_by_key(k, |&(k2, _)| k2) {
                Ok(idx) => c.is_subset(&other.containers[idx].1),
                Err(_) => false,
            }
        })
    }

    /// Whether the two sets share no value.
    pub fn is_disjoint(&self, other: &RoaringBitmap) -> bool {
        self.intersection_len(other) == 0
    }

    fn binary_op(
        &self,
        other: &RoaringBitmap,
        keep_left: bool,
        keep_right: bool,
        combine: impl Fn(&Container, &Container) -> Container,
    ) -> RoaringBitmap {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.containers.len() && j < other.containers.len() {
            let (ka, ca) = &self.containers[i];
            let (kb, cb) = &other.containers[j];
            match ka.cmp(kb) {
                std::cmp::Ordering::Less => {
                    if keep_left {
                        out.push((*ka, ca.clone()));
                    }
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    if keep_right {
                        out.push((*kb, cb.clone()));
                    }
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let c = combine(ca, cb);
                    if !c.is_empty() {
                        out.push((*ka, c));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        if keep_left {
            out.extend(self.containers[i..].iter().cloned());
        }
        if keep_right {
            out.extend(other.containers[j..].iter().cloned());
        }
        RoaringBitmap { containers: out }
    }
}

fn split(value: u32) -> (u16, u16) {
    ((value >> 16) as u16, value as u16)
}

fn join(key: u16, low: u16) -> u32 {
    (key as u32) << 16 | low as u32
}

impl BitAnd for &RoaringBitmap {
    type Output = RoaringBitmap;

    fn bitand(self, rhs: &RoaringBitmap) -> RoaringBitmap {
        self.binary_op(rhs, false, false, Container::and)
    }
}

impl BitOr for &RoaringBitmap {
    type Output = RoaringBitmap;

    fn bitor(self, rhs: &RoaringBitmap) -> RoaringBitmap {
        self.binary_op(rhs, true, true, Container::or)
    }
}

impl Sub for &RoaringBitmap {
    type Output = RoaringBitmap;

    fn sub(self, rhs: &RoaringBitmap) -> RoaringBitmap {
        self.binary_op(rhs, true, false, Container::sub)
    }
}

impl BitXor for &RoaringBitmap {
    type Output = RoaringBitmap;

    fn bitxor(self, rhs: &RoaringBitmap) -> RoaringBitmap {
        self.binary_op(rhs, true, true, Container::xor)
    }
}

impl PartialEq for RoaringBitmap {
    fn eq(&self, other: &RoaringBitmap) -> bool {
        self.len() == other.len() && self.is_subset(other)
    }
}

impl Eq for RoaringBitmap {}

impl fmt::Debug for RoaringBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len() > 16 {
            return write!(f, "RoaringBitmap{{{} values}}", self.len());
        }
        let mut set = f.debug_set();
        for v in self.iter() {
            set.entry(&v);
        }
        set.finish()
    }
}

impl FromIterator<u32> for RoaringBitmap {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> RoaringBitmap {
        let mut bm = RoaringBitmap::new();
        bm.extend(iter);
        bm
    }
}

impl Extend<u32> for RoaringBitmap {
    fn extend<I: IntoIterator<Item = u32>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<'a> IntoIterator for &'a RoaringBitmap {
    type Item = u32;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Ascending iterator over the values of a [`RoaringBitmap`].
///
/// Created by [`RoaringBitmap::iter`].
pub struct Iter<'a> {
    bitmap: &'a RoaringBitmap,
    container_idx: usize,
    values: Vec<u16>,
    value_idx: usize,
}

impl Iterator for Iter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.value_idx < self.values.len() {
                let (key, _) = self.bitmap.containers[self.container_idx - 1];
                let low = self.values[self.value_idx];
                self.value_idx += 1;
                return Some(join(key, low));
            }
            let (_, container) = self.bitmap.containers.get(self.container_idx)?;
            self.values = container.to_sorted_vec();
            self.value_idx = 0;
            self.container_idx += 1;
        }
    }
}

/// Ascending iterator over the intersection of two bitmaps.
///
/// Created by [`RoaringBitmap::intersection_iter`]; only containers whose
/// 16-bit chunk key appears on both sides are ever touched.
pub struct IntersectionIter<'a> {
    a: &'a [(u16, Container)],
    b: &'a [(u16, Container)],
    i: usize,
    j: usize,
    values: Vec<u16>,
    value_idx: usize,
    key: u16,
}

impl Iterator for IntersectionIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.value_idx < self.values.len() {
                let low = self.values[self.value_idx];
                self.value_idx += 1;
                return Some(join(self.key, low));
            }
            while self.i < self.a.len() && self.j < self.b.len() {
                let (ka, ca) = &self.a[self.i];
                let (kb, cb) = &self.b[self.j];
                match ka.cmp(kb) {
                    std::cmp::Ordering::Less => self.i += 1,
                    std::cmp::Ordering::Greater => self.j += 1,
                    std::cmp::Ordering::Equal => {
                        self.key = *ka;
                        // Reuse the one buffer across chunk pairs — no
                        // per-chunk allocation on this hot path.
                        ca.and_into(cb, &mut self.values);
                        self.value_idx = 0;
                        self.i += 1;
                        self.j += 1;
                        break;
                    }
                }
            }
            if self.value_idx >= self.values.len()
                && (self.i >= self.a.len() || self.j >= self.b.len())
            {
                return None;
            }
        }
    }
}

impl std::ops::BitOrAssign<&RoaringBitmap> for RoaringBitmap {
    /// In-place union; see [`RoaringBitmap::union_with`].
    fn bitor_assign(&mut self, rhs: &RoaringBitmap) {
        self.union_with(rhs);
    }
}

impl Serialize for RoaringBitmap {
    /// Serializes as an ascending sequence of `u32` values.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len() as usize))?;
        for v in self.iter() {
            seq.serialize_element(&v)?;
        }
        seq.end()
    }
}

impl<'de> Deserialize<'de> for RoaringBitmap {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BitmapVisitor;

        impl<'de> Visitor<'de> for BitmapVisitor {
            type Value = RoaringBitmap;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence of u32 values")
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut bm = RoaringBitmap::new();
                while let Some(v) = seq.next_element::<u32>()? {
                    bm.insert(v);
                }
                Ok(bm)
            }
        }

        deserializer.deserialize_seq(BitmapVisitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn bm(values: &[u32]) -> RoaringBitmap {
        values.iter().copied().collect()
    }

    #[test]
    fn basic_insert_contains_remove() {
        let mut b = RoaringBitmap::new();
        assert!(b.is_empty());
        assert!(b.insert(42));
        assert!(!b.insert(42));
        assert!(b.contains(42));
        assert!(!b.contains(41));
        assert_eq!(b.len(), 1);
        assert!(b.remove(42));
        assert!(!b.remove(42));
        assert!(b.is_empty());
    }

    #[test]
    fn values_across_chunks() {
        let values = [0u32, 1, 65_535, 65_536, 1 << 20, u32::MAX];
        let b = bm(&values);
        assert_eq!(b.len(), values.len() as u64);
        for v in values {
            assert!(b.contains(v), "{v}");
        }
        assert_eq!(b.iter().collect::<Vec<_>>(), {
            let mut v = values.to_vec();
            v.sort_unstable();
            v
        });
    }

    #[test]
    fn min_max() {
        let b = bm(&[5, 1 << 20, 3]);
        assert_eq!(b.min(), Some(3));
        assert_eq!(b.max(), Some(1 << 20));
        assert_eq!(RoaringBitmap::new().min(), None);
        assert_eq!(RoaringBitmap::new().max(), None);
    }

    #[test]
    fn removing_last_value_drops_container() {
        let mut b = bm(&[1, 65_536]);
        b.remove(65_536);
        assert_eq!(b.len(), 1);
        assert!(b.contains(1));
        assert!(!b.contains(65_536));
    }

    #[test]
    fn dense_chunk_upgrades() {
        let b: RoaringBitmap = (0..10_000u32).collect();
        assert_eq!(b.len(), 10_000);
        assert!(b.contains(9_999));
        assert!(!b.contains(10_000));
        assert_eq!(b.iter().count(), 10_000);
    }

    #[test]
    fn set_algebra_small() {
        let a = bm(&[1, 2, 3, 100_000]);
        let b = bm(&[2, 3, 4, 200_000]);
        assert_eq!((&a & &b).iter().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(
            (&a | &b).iter().collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 100_000, 200_000]
        );
        assert_eq!((&a - &b).iter().collect::<Vec<_>>(), vec![1, 100_000]);
        assert_eq!(
            (&a ^ &b).iter().collect::<Vec<_>>(),
            vec![1, 4, 100_000, 200_000]
        );
    }

    #[test]
    fn intersection_len_and_union_len() {
        let a: RoaringBitmap = (0..8_000u32).collect();
        let b: RoaringBitmap = (4_000..12_000u32).collect();
        assert_eq!(a.intersection_len(&b), 4_000);
        assert_eq!(a.union_len(&b), 12_000);
        assert_eq!(a.intersection_len(&b), (&a & &b).len());
        assert_eq!(a.union_len(&b), (&a | &b).len());
    }

    #[test]
    fn jaccard_known_values() {
        let a = bm(&[1, 2, 3]);
        let b = bm(&[2, 3, 4]);
        assert!((a.jaccard(&b) - 0.5).abs() < 1e-12);
        assert!((a.jaccard_distance(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.jaccard(&a), 1.0);
        assert_eq!(RoaringBitmap::new().jaccard(&RoaringBitmap::new()), 1.0);
        assert_eq!(a.jaccard(&RoaringBitmap::new()), 0.0);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = bm(&[1, 2]);
        let b = bm(&[1, 2, 3]);
        let c = bm(&[7, 8]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        assert!(RoaringBitmap::new().is_subset(&a));
    }

    #[test]
    fn equality_is_set_equality() {
        let a = bm(&[3, 1, 2]);
        let b = bm(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_ne!(a, bm(&[1, 2]));
        assert_ne!(a, bm(&[1, 2, 4]));
    }

    #[test]
    fn debug_output_truncates() {
        let small = bm(&[1, 2]);
        assert_eq!(format!("{small:?}"), "{1, 2}");
        let big: RoaringBitmap = (0..100u32).collect();
        let s = format!("{big:?}");
        assert!(s.contains("100 values"), "{s}");
    }

    #[test]
    fn empty_op_identities() {
        let a = bm(&[1, 2, 3]);
        let e = RoaringBitmap::new();
        assert_eq!(&a | &e, a);
        assert_eq!(&a & &e, e);
        assert_eq!(&a - &e, a);
        assert_eq!(&e - &a, e);
        assert_eq!(&a ^ &e, a);
    }

    #[test]
    fn union_with_matches_bitor() {
        let a = bm(&[1, 2, 3, 100_000]);
        let b = bm(&[2, 3, 4, 200_000]);
        let mut c = a.clone();
        c.union_with(&b);
        assert_eq!(c, &a | &b);
        let mut d = a.clone();
        d |= &RoaringBitmap::new();
        assert_eq!(d, a);
        let mut e = RoaringBitmap::new();
        e |= &b;
        assert_eq!(e, b);
    }

    #[test]
    fn intersection_iter_matches_bitand() {
        let a = bm(&[1, 2, 3, 100_000, 200_001]);
        let b = bm(&[2, 3, 4, 100_000, 300_000]);
        assert_eq!(
            a.intersection_iter(&b).collect::<Vec<_>>(),
            (&a & &b).iter().collect::<Vec<_>>()
        );
        assert_eq!(a.intersection_iter(&RoaringBitmap::new()).count(), 0);
        let disjoint = bm(&[7, 400_000]);
        assert_eq!(a.intersection_iter(&disjoint).count(), 0);
    }

    #[test]
    fn rank_known_values() {
        let b = bm(&[2, 5, 9, 100_000]);
        assert_eq!(b.rank(1), 0);
        assert_eq!(b.rank(2), 1);
        assert_eq!(b.rank(5), 2);
        assert_eq!(b.rank(99_999), 3);
        assert_eq!(b.rank(u32::MAX), 4);
        assert_eq!(RoaringBitmap::new().rank(5), 0);
    }

    #[test]
    fn select_known_values() {
        let b = bm(&[2, 5, 9, 100_000]);
        assert_eq!(b.select(0), Some(2));
        assert_eq!(b.select(3), Some(100_000));
        assert_eq!(b.select(4), None);
        assert_eq!(RoaringBitmap::new().select(0), None);
    }

    #[test]
    fn rank_select_on_dense_chunks() {
        let b: RoaringBitmap = (0..10_000u32).map(|i| i * 2).collect();
        assert_eq!(b.rank(0), 1);
        assert_eq!(b.rank(1), 1);
        assert_eq!(b.rank(19_998), 10_000);
        assert_eq!(b.select(5_000), Some(10_000));
        assert_eq!(b.select(9_999), Some(19_998));
        assert_eq!(b.select(10_000), None);
    }

    #[test]
    fn serde_roundtrip_as_sequence() {
        // Use a self-describing human-readable format stand-in: serialize to
        // the serde test-friendly Vec<u32> via serde's value model is not
        // available offline, so assert the Serialize path through a custom
        // collector serializer is consistent with iter().
        let b = bm(&[5, 1, 100_000]);
        let as_vec: Vec<u32> = b.iter().collect();
        assert_eq!(as_vec, vec![1, 5, 100_000]);
    }

    #[test]
    fn triangle_inequality_of_jaccard_distance_spot_check() {
        // Kosub (the paper's ref [17]) proves the Jaccard distance is a
        // metric; verify on a few concrete triples.
        let a = bm(&[1, 2, 3, 4]);
        let b = bm(&[3, 4, 5, 6]);
        let c = bm(&[5, 6, 7, 8]);
        let ab = a.jaccard_distance(&b);
        let bc = b.jaccard_distance(&c);
        let ac = a.jaccard_distance(&c);
        assert!(ac <= ab + bc + 1e-12);
    }

    proptest! {
        #[test]
        fn prop_matches_btreeset_model(
            xs in proptest::collection::vec(0u32..200_000, 0..400),
            ys in proptest::collection::vec(0u32..200_000, 0..400),
        ) {
            let a: RoaringBitmap = xs.iter().copied().collect();
            let b: RoaringBitmap = ys.iter().copied().collect();
            let sa: BTreeSet<u32> = xs.iter().copied().collect();
            let sb: BTreeSet<u32> = ys.iter().copied().collect();

            prop_assert_eq!(a.len(), sa.len() as u64);
            prop_assert_eq!(a.iter().collect::<Vec<_>>(), sa.iter().copied().collect::<Vec<_>>());
            prop_assert_eq!(
                (&a & &b).iter().collect::<Vec<_>>(),
                sa.intersection(&sb).copied().collect::<Vec<_>>()
            );
            prop_assert_eq!(
                (&a | &b).iter().collect::<Vec<_>>(),
                sa.union(&sb).copied().collect::<Vec<_>>()
            );
            prop_assert_eq!(
                (&a - &b).iter().collect::<Vec<_>>(),
                sa.difference(&sb).copied().collect::<Vec<_>>()
            );
            prop_assert_eq!(
                (&a ^ &b).iter().collect::<Vec<_>>(),
                sa.symmetric_difference(&sb).copied().collect::<Vec<_>>()
            );
            prop_assert_eq!(a.intersection_len(&b), (&a & &b).len());
            prop_assert_eq!(a.union_len(&b), (&a | &b).len());
            prop_assert_eq!(
                a.intersection_iter(&b).collect::<Vec<_>>(),
                sa.intersection(&sb).copied().collect::<Vec<_>>()
            );
            let mut inplace = a.clone();
            inplace.union_with(&b);
            prop_assert_eq!(inplace, &a | &b);
        }

        #[test]
        fn prop_insert_remove_roundtrip(xs in proptest::collection::vec(any::<u32>(), 0..200)) {
            let mut b = RoaringBitmap::new();
            for &x in &xs {
                b.insert(x);
            }
            for &x in &xs {
                prop_assert!(b.contains(x));
            }
            for &x in &xs {
                b.remove(x);
            }
            prop_assert!(b.is_empty());
        }

        #[test]
        fn prop_jaccard_distance_in_unit_interval(
            xs in proptest::collection::vec(0u32..10_000, 0..200),
            ys in proptest::collection::vec(0u32..10_000, 0..200),
        ) {
            let a: RoaringBitmap = xs.into_iter().collect();
            let b: RoaringBitmap = ys.into_iter().collect();
            let d = a.jaccard_distance(&b);
            prop_assert!((0.0..=1.0).contains(&d));
            prop_assert!((d - b.jaccard_distance(&a)).abs() < 1e-15);
            prop_assert_eq!(a.jaccard_distance(&a), 0.0);
        }

        #[test]
        fn prop_rank_select_are_inverse(
            xs in proptest::collection::vec(0u32..500_000, 1..300),
        ) {
            let b: RoaringBitmap = xs.iter().copied().collect();
            let sorted: Vec<u32> = b.iter().collect();
            for (i, &v) in sorted.iter().enumerate() {
                prop_assert_eq!(b.select(i as u64), Some(v));
                prop_assert_eq!(b.rank(v), i as u64 + 1);
                if v > 0 && !b.contains(v - 1) {
                    prop_assert_eq!(b.rank(v - 1), i as u64);
                }
            }
            prop_assert_eq!(b.select(b.len()), None);
        }

        #[test]
        fn prop_dense_boundary_transitions(start in 0u32..100, extra in 1u32..200) {
            // Straddle the array->bitmap boundary (4096) in one chunk.
            let n = 4096 + extra;
            let b: RoaringBitmap = (start..start + n).collect();
            prop_assert_eq!(b.len(), n as u64);
            let mut b2 = b.clone();
            for v in start..start + extra {
                b2.remove(v);
            }
            prop_assert_eq!(b2.len(), 4096);
            prop_assert_eq!(
                b2.iter().collect::<Vec<_>>(),
                (start + extra..start + n).collect::<Vec<_>>()
            );
        }
    }
}
