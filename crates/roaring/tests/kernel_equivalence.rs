//! Differential proptests pinning every optimized kernel to its retained
//! reference implementation, and the new bitmap-level visitor/early-exit
//! APIs to the iterator-based originals.
//!
//! The inputs deliberately cover three regimes:
//!
//! * **random** — uniform draws over a shared value domain,
//! * **adversarially skewed** — one tiny sorted run against one huge one
//!   (the regime the galloping cutover exists for), and
//! * **boundary cardinality** — sets straddling the array↔bitmap container
//!   threshold (4096 values per 65 536-value chunk), so every container
//!   pairing (array∩array, array∩bitmap, bitmap∩bitmap) is exercised.

use geodabs_roaring::kernels;
use geodabs_roaring::RoaringBitmap;
use proptest::prelude::*;

/// Sorts and deduplicates raw draws into a valid kernel input.
fn sorted(mut xs: Vec<u16>) -> Vec<u16> {
    xs.sort_unstable();
    xs.dedup();
    xs
}

/// 1024-word bitmap store from a set of bit positions.
fn words_from(bits: &[u16]) -> Vec<u64> {
    let mut words = vec![0u64; 1024];
    for &b in bits {
        words[(b >> 6) as usize] |= 1u64 << (b & 63);
    }
    words
}

fn reference_intersection(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::new();
    kernels::intersect_visit_linear(a, b, |x| out.push(x));
    out
}

/// A bitmap hovering around the array↔bitmap threshold (4096 values) in
/// chunk 0, plus arbitrary extra values, so intersections mix container
/// kinds on both sides.
fn boundary_bitmap(n: u32, stride_seed: u32, extras: &[u32]) -> RoaringBitmap {
    let stride = 3 + stride_seed % 5;
    let mut bm: RoaringBitmap = (0..n).map(|i| (i * stride) % 65_536).collect();
    bm.extend(extras.iter().copied());
    bm
}

proptest! {
    // --- slice kernels: galloping vs the linear merge -------------------

    #[test]
    fn gallop_matches_linear_random(
        xs in proptest::collection::vec(any::<u16>(), 0..512),
        ys in proptest::collection::vec(any::<u16>(), 0..512),
    ) {
        let (a, b) = (sorted(xs), sorted(ys));
        let mut gallop = Vec::new();
        kernels::intersect_visit_gallop(&a, &b, |x| gallop.push(x));
        prop_assert_eq!(gallop, reference_intersection(&a, &b));
    }

    #[test]
    fn gallop_matches_linear_skewed(
        xs in proptest::collection::vec(0u16..8192, 0..24),
        ys in proptest::collection::vec(0u16..8192, 512..2048),
    ) {
        let (small, large) = (sorted(xs), sorted(ys));
        let mut gallop = Vec::new();
        kernels::intersect_visit_gallop(&small, &large, |x| gallop.push(x));
        prop_assert_eq!(&gallop, &reference_intersection(&small, &large));
        // The dispatching entry point must agree no matter which side is
        // passed first.
        let mut flipped = Vec::new();
        kernels::intersect_visit(&large, &small, |x| flipped.push(x));
        prop_assert_eq!(flipped, gallop);
    }

    #[test]
    fn intersect_len_and_into_match_visit(
        xs in proptest::collection::vec(any::<u16>(), 0..512),
        ys in proptest::collection::vec(any::<u16>(), 0..512),
    ) {
        let (a, b) = (sorted(xs), sorted(ys));
        let reference = reference_intersection(&a, &b);
        prop_assert_eq!(kernels::intersect_len(&a, &b), reference.len());
        let mut out = Vec::new();
        kernels::intersect_into(&a, &b, &mut out);
        prop_assert_eq!(out, reference);
    }

    #[test]
    fn is_subset_sorted_matches_full_count(
        xs in proptest::collection::vec(any::<u16>(), 0..256),
        ys in proptest::collection::vec(any::<u16>(), 0..1024),
    ) {
        let (a, b) = (sorted(xs), sorted(ys));
        let expected = kernels::intersect_len(&a, &b) == a.len();
        prop_assert_eq!(kernels::is_subset_sorted(&a, &b), expected);
        // Any subset of b must also report true.
        let sub: Vec<u16> = b.iter().copied().step_by(3).collect();
        prop_assert!(kernels::is_subset_sorted(&sub, &b));
    }

    // --- word kernels: chunked vs the scalar loop -----------------------

    #[test]
    fn chunked_word_kernels_match_scalar(
        xs in proptest::collection::vec(any::<u16>(), 0..2048),
        ys in proptest::collection::vec(any::<u16>(), 0..2048),
    ) {
        let (a, b) = (words_from(&xs), words_from(&ys));
        let reference = kernels::and_words_len_scalar(&a, &b);
        prop_assert_eq!(kernels::and_words_len(&a, &b), reference);

        let mut out = vec![0u64; a.len()];
        let written = kernels::and_words_into(&a, &b, &mut out);
        prop_assert_eq!(written, reference);
        for i in 0..a.len() {
            prop_assert_eq!(out[i], a[i] & b[i]);
        }

        let mut visited = 0u32;
        let mut all_set = true;
        kernels::and_words_visit(&a, &b, 0, |v| {
            all_set &= out[(v >> 6) as usize] & (1 << (v & 63)) != 0;
            visited += 1;
        });
        prop_assert!(all_set);
        prop_assert_eq!(visited, reference);
    }

    #[test]
    fn capped_count_matches_scalar(
        xs in proptest::collection::vec(any::<u16>(), 0..2048),
        ys in proptest::collection::vec(any::<u16>(), 0..2048),
        cap in 0usize..3000,
    ) {
        let (a, b) = (words_from(&xs), words_from(&ys));
        let exact = kernels::and_words_len_scalar(&a, &b) as usize;
        prop_assert_eq!(kernels::and_words_len_capped(&a, &b, cap), exact.min(cap));
        prop_assert_eq!(kernels::and_words_len_at_least(&a, &b, cap as u32), exact >= cap);
    }

    #[test]
    fn subset_words_matches_definition(
        xs in proptest::collection::vec(any::<u16>(), 0..2048),
        ys in proptest::collection::vec(any::<u16>(), 0..2048),
    ) {
        let (a, b) = (words_from(&xs), words_from(&ys));
        let expected = a.iter().zip(&b).all(|(x, y)| x & !y == 0);
        prop_assert_eq!(kernels::subset_words(&a, &b), expected);
        prop_assert!(kernels::subset_words(&a, &a));
    }

    #[test]
    fn words_visit_enumerates_set_bits(xs in proptest::collection::vec(any::<u16>(), 0..2048)) {
        let xs = sorted(xs);
        let a = words_from(&xs);
        let mut seen = Vec::new();
        kernels::words_visit(&a, 1 << 16, |v| seen.push(v));
        let expected: Vec<u32> = xs.iter().map(|&x| (1 << 16) | x as u32).collect();
        prop_assert_eq!(seen, expected);
    }

    // --- bitmap-level visitors vs the iterator originals ----------------

    #[test]
    fn for_each_matches_iter(xs in proptest::collection::vec(any::<u32>(), 0..600)) {
        let bm: RoaringBitmap = xs.iter().copied().collect();
        let mut visited = Vec::new();
        bm.for_each(|v| visited.push(v));
        prop_assert_eq!(visited, bm.iter().collect::<Vec<_>>());
    }

    #[test]
    fn intersection_for_each_matches_intersection_iter(
        xs in proptest::collection::vec(0u32..200_000, 0..600),
        ys in proptest::collection::vec(0u32..200_000, 0..600),
    ) {
        let a: RoaringBitmap = xs.iter().copied().collect();
        let b: RoaringBitmap = ys.iter().copied().collect();
        let mut visited = Vec::new();
        a.intersection_for_each(&b, |v| visited.push(v));
        prop_assert_eq!(visited, a.intersection_iter(&b).collect::<Vec<_>>());
    }

    #[test]
    fn intersection_len_at_least_matches_full_count(
        xs in proptest::collection::vec(0u32..100_000, 0..600),
        ys in proptest::collection::vec(0u32..100_000, 0..600),
        n in 0u64..700,
    ) {
        let a: RoaringBitmap = xs.iter().copied().collect();
        let b: RoaringBitmap = ys.iter().copied().collect();
        prop_assert_eq!(
            a.intersection_len_at_least(&b, n),
            a.intersection_len(&b) >= n
        );
    }

    // --- boundary cardinality: array↔bitmap container threshold ---------

    #[test]
    fn boundary_containers_agree_with_iterators(
        na in 3900u32..4300,
        nb in 3900u32..4300,
        sa in 0u32..97,
        sb in 0u32..97,
        extras in proptest::collection::vec(any::<u32>(), 0..20),
    ) {
        let a = boundary_bitmap(na, sa, &extras);
        let b = boundary_bitmap(nb, sb, &[]);
        // Cross the container-kind boundary on one side by thinning.
        let thin: RoaringBitmap = b.iter().step_by(17).collect();
        for other in [&b, &thin] {
            let mut visited = Vec::new();
            a.intersection_for_each(other, |v| visited.push(v));
            prop_assert_eq!(&visited, &a.intersection_iter(other).collect::<Vec<_>>());
            prop_assert_eq!(visited.len() as u64, a.intersection_len(other));
            let inter = visited.len() as u64;
            prop_assert!(a.intersection_len_at_least(other, inter));
            prop_assert!(!a.intersection_len_at_least(other, inter + 1));
        }
        prop_assert_eq!(thin.is_subset(&b), thin.intersection_len(&b) == thin.len());
        // Materialized intersection stays consistent with the visitors
        // (exercises the cardinality-first bitmap∩bitmap `and`).
        let materialized = &a & &b;
        prop_assert_eq!(materialized.len(), a.intersection_len(&b));
        prop_assert!(materialized.is_subset(&a) && materialized.is_subset(&b));
    }
}
