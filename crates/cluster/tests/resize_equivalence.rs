//! Elastic-resizing equivalence: a cluster resized to `n` nodes must be
//! indistinguishable — bit-identical search results and routing
//! statistics — from a cluster freshly built at `n` nodes over the same
//! corpus. Resizing only moves state; it must never change what any
//! query returns.

use geodabs_cluster::ClusterIndex;
use geodabs_core::{Fingerprints, GeodabConfig};
use geodabs_index::SearchOptions;
use geodabs_traj::TrajId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn resized_cluster_equals_freshly_built_cluster(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..5_000, 0..25), 1..30),
        queries in proptest::collection::vec(
            proptest::collection::vec(0u32..5_000, 0..25), 1..6),
        shards in 1u64..10_000,
        from_nodes in 1usize..12,
        to_nodes in 1usize..12,
        limit in 0usize..6,
        threshold_pm in 0u32..101,
        remove_stride in 2usize..5,
    ) {
        let config = GeodabConfig::default();
        let mut resized = ClusterIndex::new(config, shards, from_nodes).unwrap();
        let mut fresh = ClusterIndex::new(config, shards, to_nodes).unwrap();
        for (i, set) in sets.iter().enumerate() {
            let fp = Fingerprints::from_ordered(set.clone());
            resized.insert_fingerprints(TrajId::new(i as u32), fp.clone());
            fresh.insert_fingerprints(TrajId::new(i as u32), fp);
        }
        // Removals exercise dense-slot recycling on both sides before the
        // migration happens.
        for i in (0..sets.len()).step_by(remove_stride) {
            resized.remove(TrajId::new(i as u32));
            fresh.remove(TrajId::new(i as u32));
        }
        resized.resize(to_nodes).unwrap();

        // Placement converges: same postings and replicas per node.
        prop_assert_eq!(resized.postings_per_node(), fresh.postings_per_node());
        prop_assert_eq!(resized.trajectories_per_node(), fresh.trajectories_per_node());
        prop_assert_eq!(resized.active_shards(), fresh.active_shards());
        prop_assert_eq!(
            resized.ids().collect::<Vec<_>>(),
            fresh.ids().collect::<Vec<_>>()
        );

        let mut options = SearchOptions::default().max_distance(threshold_pm as f64 / 100.0);
        if limit > 0 {
            options = options.limit(limit - 1);
        }
        for query in &queries {
            let query_fp = Fingerprints::from_ordered(query.clone());
            let (hits_r, stats_r) = resized.search_fingerprints_with_stats(&query_fp, &options);
            let (hits_f, stats_f) = fresh.search_fingerprints_with_stats(&query_fp, &options);
            prop_assert_eq!(hits_r, hits_f);
            prop_assert_eq!(stats_r, stats_f);
        }
    }

    /// Chained resizes (grow, shrink, back to the start) stay equivalent
    /// to a fresh build at every step.
    #[test]
    fn chained_resizes_remain_equivalent(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..3_000, 0..20), 1..20),
        query in proptest::collection::vec(0u32..3_000, 0..20),
        hops in proptest::collection::vec(1usize..10, 1..4),
    ) {
        let config = GeodabConfig::default();
        let mut resized = ClusterIndex::new(config, 1_000, 4).unwrap();
        for (i, set) in sets.iter().enumerate() {
            resized.insert_fingerprints(
                TrajId::new(i as u32),
                Fingerprints::from_ordered(set.clone()),
            );
        }
        let query_fp = Fingerprints::from_ordered(query);
        for &nodes in &hops {
            resized.resize(nodes).unwrap();
            let mut fresh = ClusterIndex::new(config, 1_000, nodes).unwrap();
            for (i, set) in sets.iter().enumerate() {
                fresh.insert_fingerprints(
                    TrajId::new(i as u32),
                    Fingerprints::from_ordered(set.clone()),
                );
            }
            prop_assert_eq!(resized.postings_per_node(), fresh.postings_per_node());
            prop_assert_eq!(
                resized.search_fingerprints(&query_fp, &SearchOptions::default()),
                fresh.search_fingerprints(&query_fp, &SearchOptions::default())
            );
        }
    }
}
