//! Property tests pinning the cluster snapshot: `load ∘ save ≡ id` on
//! search results over arbitrary workloads (including removals, dense-slot
//! recycling and resizes), deterministic bytes, and no panic on corrupted
//! or truncated input.

use geodabs_cluster::ClusterIndex;
use geodabs_core::{Fingerprints, GeodabConfig};
use geodabs_index::store::Persist;
use geodabs_index::SearchOptions;
use geodabs_traj::TrajId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A restored cluster answers every query exactly like the one that
    /// was saved — same hits, same routing statistics, same placement.
    #[test]
    fn load_save_is_identity_on_search_results(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..5_000, 0..25), 1..30),
        query in proptest::collection::vec(0u32..5_000, 0..25),
        nodes in 1usize..10,
        shards in 1u64..5_000,
        limit in 0usize..6,
        remove_stride in 2usize..5,
        resize_to in 0usize..10,
    ) {
        let config = GeodabConfig::default();
        let mut cluster = ClusterIndex::new(config, shards, nodes).unwrap();
        for (i, set) in sets.iter().enumerate() {
            cluster.insert_fingerprints(
                TrajId::new(i as u32),
                Fingerprints::from_ordered(set.clone()),
            );
        }
        // Removals and re-inserts leave vacant node-local interner slots,
        // the state a naive snapshot would lose.
        for i in (0..sets.len()).step_by(remove_stride) {
            cluster.remove(TrajId::new(i as u32));
        }
        for i in (0..sets.len()).step_by(remove_stride * 2) {
            let shifted: Vec<u32> = sets[i].iter().map(|t| t + 1).collect();
            cluster.insert_fingerprints(
                TrajId::new(i as u32),
                Fingerprints::from_ordered(shifted),
            );
        }
        if resize_to > 0 {
            cluster.resize(resize_to).unwrap();
        }

        let bytes = cluster.to_snapshot();
        prop_assert_eq!(&bytes, &cluster.to_snapshot());
        let restored = ClusterIndex::from_snapshot(&bytes).expect("roundtrip");
        prop_assert_eq!(restored.len(), cluster.len());
        prop_assert_eq!(restored.postings_per_node(), cluster.postings_per_node());
        prop_assert_eq!(restored.trajectories_per_node(), cluster.trajectories_per_node());
        prop_assert_eq!(restored.to_snapshot(), bytes);

        let query_fp = Fingerprints::from_ordered(query);
        let mut options = SearchOptions::default();
        if limit > 0 {
            options = options.limit(limit - 1);
        }
        let (hits_r, stats_r) = restored.search_fingerprints_with_stats(&query_fp, &options);
        let (hits_o, stats_o) = cluster.search_fingerprints_with_stats(&query_fp, &options);
        prop_assert_eq!(hits_r, hits_o);
        prop_assert_eq!(stats_r, stats_o);
    }

    /// Bit flips anywhere in a cluster snapshot never panic; the v2
    /// checksums and structural validation reject them.
    #[test]
    fn corruption_never_panics(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..2_000, 1..10), 1..8),
        nodes in 1usize..5,
        offset_seed in 0usize..100_000,
        xor in 1u8..=255,
    ) {
        let mut cluster = ClusterIndex::new(GeodabConfig::default(), 100, nodes).unwrap();
        for (i, set) in sets.iter().enumerate() {
            cluster.insert_fingerprints(
                TrajId::new(i as u32),
                Fingerprints::from_ordered(set.clone()),
            );
        }
        let mut bytes = cluster.to_snapshot();
        let offset = offset_seed % bytes.len();
        bytes[offset] ^= xor;
        let err = ClusterIndex::from_snapshot(&bytes).expect_err("flip is always detected");
        prop_assert!(!err.to_string().is_empty());
    }

    /// Every strict prefix of a snapshot fails cleanly.
    #[test]
    fn truncation_never_panics(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..2_000, 1..8), 1..6),
        cut_seed in 0usize..100_000,
    ) {
        let mut cluster = ClusterIndex::new(GeodabConfig::default(), 50, 3).unwrap();
        for (i, set) in sets.iter().enumerate() {
            cluster.insert_fingerprints(
                TrajId::new(i as u32),
                Fingerprints::from_ordered(set.clone()),
            );
        }
        let bytes = cluster.to_snapshot();
        let cut = cut_seed % bytes.len();
        prop_assert!(ClusterIndex::from_snapshot(&bytes[..cut]).is_err());
    }
}
