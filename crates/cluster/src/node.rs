//! A standalone shard node: one [`ClusterIndex`] node's slice of the
//! index, hosted on its own — the state a remote **shard server**
//! carries in the distributed deployment.
//!
//! A [`ShardNode`] holds exactly what a [`NodeStore`] inside a
//! [`ClusterIndex`] holds: the posting lists of every term routed to
//! this node, plus the **full** fingerprint replica of every trajectory
//! those postings reference. Keeping the full replica (not the routed
//! subset) is what makes per-shard scoring exact — each candidate's
//! Jaccard distance is computed against its complete fingerprint set,
//! so the per-shard top-k heaps merge into the same global ranking the
//! monolithic index produces (see [`crate::merge_heaps`]).
//!
//! Snapshots use backend tag 4 (`node`) and reuse the cluster
//! snapshot's per-node segment encoding:
//!
//! ```text
//! CONF   depth u8, prefix u8, k u32, t u32,
//!        num_shards u64, num_nodes u32, node_id u32
//! FPRS   count u32, count × (id u32, len u32, len × geodab u32)
//! NODE0  capacity u32, live u32, live × (dense u32, id u32)
//!        terms u32, terms × (term u32, posting bitmap wire form)
//! ```

use geodabs_core::{Fingerprinter, Fingerprints, GeodabConfig};
use geodabs_index::codec::{read_sequences, write_sequences};
use geodabs_index::store::{
    node_section_id, BackendKind, Cursor, Persist, SnapshotError, SnapshotReader, SnapshotWriter,
    MAX_NODE_SECTIONS, SEC_CONFIG, SEC_FINGERPRINTS,
};
use geodabs_index::{SearchOptions, SearchResult};
use geodabs_traj::{TrajId, Trajectory};
use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::cluster::NodeStore;
use crate::snapshot::{decode_node, encode_node};
use crate::{ClusterConfigError, ClusterIndex, ShardRouter};

/// One cluster node hosted standalone, as a remote shard server does.
///
/// Mutations take the **full** fingerprint sequence of a trajectory
/// (the frontend broadcasts it to every shard) and keep only the
/// locally routed postings — plus the full replica whenever at least
/// one posting lands here. Queries score the node-local candidates into
/// a bounded top-k heap, the per-shard partial the frontend merges.
#[derive(Debug, Clone)]
pub struct ShardNode {
    fingerprinter: Fingerprinter,
    router: ShardRouter,
    node_id: usize,
    store: NodeStore,
}

impl ShardNode {
    /// Creates the empty node `node_id` of a cluster with `num_shards`
    /// shards over `num_nodes` nodes.
    ///
    /// # Errors
    ///
    /// Returns a [`ClusterConfigError`] for zero shards/nodes or a node
    /// id outside `0..num_nodes`.
    pub fn new(
        config: GeodabConfig,
        num_shards: u64,
        num_nodes: usize,
        node_id: usize,
    ) -> Result<ShardNode, ClusterConfigError> {
        let router = ShardRouter::new(config.prefix_bits(), num_shards, num_nodes)?;
        if node_id >= num_nodes {
            return Err(ClusterConfigError::NodeIdOutOfRange { node_id, num_nodes });
        }
        Ok(ShardNode {
            fingerprinter: Fingerprinter::new(config),
            router,
            node_id,
            store: NodeStore::default(),
        })
    }

    /// The shard router in use (shared verbatim by every node and the
    /// frontend — routing disagreements would silently drop postings).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The fingerprinting configuration in use.
    pub fn config(&self) -> &GeodabConfig {
        self.fingerprinter.config()
    }

    /// This node's id within the cluster.
    pub fn node_id(&self) -> usize {
        self.node_id
    }

    /// Distinct trajectories referenced by this node's postings.
    pub fn len(&self) -> usize {
        self.store.fingerprints.len()
    }

    /// Whether this node references no trajectory.
    pub fn is_empty(&self) -> bool {
        self.store.fingerprints.is_empty()
    }

    /// Distinct terms with a posting list on this node.
    pub fn term_count(&self) -> usize {
        self.store.postings.len()
    }

    /// The ids holding a replica on this node, ascending.
    pub fn ids(&self) -> impl Iterator<Item = TrajId> + '_ {
        let mut ids: Vec<TrajId> = self.store.fingerprints.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
    }

    /// Fingerprints a trajectory and keeps this node's slice — what a
    /// shard server does when it ingests a corpus directly (every node
    /// ingests the same corpus; each keeps only its routed postings).
    pub fn insert(&mut self, id: TrajId, trajectory: &Trajectory) {
        let fp = self.fingerprinter.normalize_and_fingerprint(trajectory);
        self.insert_fingerprints(id, fp);
    }

    /// Applies an insert broadcast from the frontend: `fp` is the
    /// trajectory's **full** fingerprint sequence; postings are kept
    /// only for terms routed here, and the full replica is stored iff
    /// at least one posting landed. Replace-on-reinsert, like
    /// [`ClusterIndex::insert_fingerprints`].
    pub fn insert_fingerprints(&mut self, id: TrajId, fp: Fingerprints) {
        self.remove(id);
        let mut touched = false;
        for term in fp.set().iter() {
            let shard = self.router.shard_of_geodab(term);
            if self.router.node_of_shard(shard) != self.node_id {
                continue;
            }
            self.store.add_posting(term, id);
            *self.store.shard_load.entry(shard).or_insert(0) += 1;
            touched = true;
        }
        if touched {
            self.store.fingerprints.insert(id, fp);
        }
    }

    /// Applies a remove broadcast from the frontend; returns whether
    /// this node held anything for `id`. The local replica names
    /// exactly the posting lists to scrub — no coordinator bookkeeping
    /// is needed.
    pub fn remove(&mut self, id: TrajId) -> bool {
        let Some(fp) = self.store.fingerprints.remove(&id) else {
            return false;
        };
        for term in fp.set().iter() {
            let shard = self.router.shard_of_geodab(term);
            if self.router.node_of_shard(shard) != self.node_id {
                continue;
            }
            if self.store.remove_posting(term, id) {
                if let Some(load) = self.store.shard_load.get_mut(&shard) {
                    *load -= 1;
                    if *load == 0 {
                        self.store.shard_load.remove(&shard);
                    }
                }
            }
        }
        self.store.drop_id(id);
        true
    }

    /// Node-local ranked scoring from the query's full fingerprints:
    /// candidates are the union of this node's posting lists for the
    /// query terms, each scored exactly against its full replica into a
    /// bounded top-k heap — the per-shard partial the frontend merges
    /// via [`crate::merge_heaps`].
    pub fn search_fingerprints(
        &self,
        query_fp: &Fingerprints,
        options: &SearchOptions,
    ) -> Vec<SearchResult> {
        self.store.score(query_fp, options).0
    }

    /// Fingerprints a query trajectory and scores it locally (see
    /// [`ShardNode::search_fingerprints`]).
    pub fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult> {
        let query_fp = self.fingerprinter.normalize_and_fingerprint(query);
        self.search_fingerprints(&query_fp, options)
    }
}

impl ClusterIndex {
    /// Clones node `node`'s slice of this cluster as a standalone
    /// [`ShardNode`] — the state a remote shard server boots from. Its
    /// snapshot (backend tag 4) is the per-node warm-start artifact of
    /// the distributed deployment. Returns `None` for an out-of-range
    /// node index.
    pub fn shard_node(&self, node: usize) -> Option<ShardNode> {
        let store = self.nodes.get(node)?.clone();
        Some(ShardNode {
            fingerprinter: self.fingerprinter,
            router: self.router,
            node_id: node,
            store,
        })
    }

    /// Reassembles a cluster from the standalone node slices of one
    /// deployment — the inverse of [`ClusterIndex::shard_node`] over
    /// every node. `indexed` is the coordinator's id set, passed
    /// explicitly because it also records ids whose fingerprint set is
    /// empty (indexed but unreachable by any query), which no node
    /// replica remembers.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty, if node `i`'s `node_id` is not `i`,
    /// if the nodes disagree on config or router shape, or if a node
    /// holds a replica for an id absent from `indexed` — all states
    /// that cannot arise from slicing one cluster.
    pub fn from_shard_nodes(nodes: Vec<ShardNode>, indexed: BTreeSet<TrajId>) -> ClusterIndex {
        let first = nodes.first().expect("at least one shard node");
        let fingerprinter = first.fingerprinter;
        let router = first.router;
        let stores: Vec<NodeStore> = nodes
            .into_iter()
            .enumerate()
            .map(|(i, node)| {
                assert_eq!(node.node_id, i, "shard node out of order");
                assert_eq!(node.fingerprinter.config(), fingerprinter.config());
                assert_eq!(node.router.num_shards(), router.num_shards());
                assert_eq!(node.router.num_nodes(), router.num_nodes());
                assert!(
                    node.store
                        .fingerprints
                        .keys()
                        .all(|id| indexed.contains(id)),
                    "shard node holds a replica for an unindexed id"
                );
                node.store
            })
            .collect();
        assert_eq!(router.num_nodes(), stores.len(), "one slice per node");
        ClusterIndex {
            fingerprinter,
            router,
            nodes: stores,
            indexed,
        }
    }
}

impl Persist for ShardNode {
    fn to_snapshot(&self) -> Vec<u8> {
        let mut writer = SnapshotWriter::new(BackendKind::Node);

        let cfg = self.fingerprinter.config();
        let mut conf = Vec::with_capacity(26);
        conf.push(cfg.normalization_depth());
        conf.push(cfg.prefix_bits());
        conf.extend_from_slice(&(cfg.k() as u32).to_le_bytes());
        conf.extend_from_slice(&(cfg.t() as u32).to_le_bytes());
        conf.extend_from_slice(&self.router.num_shards().to_le_bytes());
        conf.extend_from_slice(&(self.router.num_nodes() as u32).to_le_bytes());
        conf.extend_from_slice(&(self.node_id as u32).to_le_bytes());
        writer.section(SEC_CONFIG, conf);

        let replicas: BTreeMap<TrajId, &Fingerprints> = self
            .store
            .fingerprints
            .iter()
            .map(|(&id, fp)| (id, fp))
            .collect();
        let records: Vec<(TrajId, &[u32])> = replicas
            .into_iter()
            .map(|(id, fp)| (id, fp.ordered()))
            .collect();
        let mut fprs = Vec::new();
        write_sequences(&mut fprs, &records);
        writer.section(SEC_FINGERPRINTS, fprs);

        writer.section(node_section_id(0), encode_node(&self.store));
        writer.finish()
    }

    fn from_snapshot(data: &[u8]) -> Result<ShardNode, SnapshotError> {
        let reader = SnapshotReader::parse(data)?;
        reader.expect_backend(BackendKind::Node)?;

        let mut conf = Cursor::new(reader.section(SEC_CONFIG)?);
        let depth = conf.u8()?;
        let prefix = conf.u8()?;
        let k = conf.u32()? as usize;
        let t = conf.u32()? as usize;
        let num_shards = conf.u64()?;
        let num_nodes = conf.u32()? as usize;
        let node_id = conf.u32()? as usize;
        conf.expect_end()?;
        let config =
            GeodabConfig::new(depth, k, t, prefix).map_err(SnapshotError::InvalidConfig)?;
        if num_nodes == 0 || num_nodes > MAX_NODE_SECTIONS {
            return Err(SnapshotError::Corrupt("node count out of range"));
        }
        if node_id >= num_nodes {
            return Err(SnapshotError::Corrupt("node id out of range"));
        }
        let router = ShardRouter::new(config.prefix_bits(), num_shards, num_nodes)
            .map_err(|_| SnapshotError::Corrupt("invalid router configuration"))?;

        let mut replicas: HashMap<TrajId, Fingerprints> = HashMap::new();
        for (id, ordered) in read_sequences::<u32>(reader.section(SEC_FINGERPRINTS)?)? {
            replicas.insert(id, Fingerprints::from_ordered(ordered));
        }

        let store = decode_node(
            reader.section(node_section_id(0))?,
            node_id,
            &router,
            &replicas,
        )?;
        if store.fingerprints.len() != replicas.len() {
            return Err(SnapshotError::Corrupt("fingerprints for an unindexed id"));
        }
        Ok(ShardNode {
            fingerprinter: Fingerprinter::new(config),
            router,
            node_id,
            store,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodabs_geo::Point;

    fn eastward(n: usize, offset_m: f64) -> Trajectory {
        let start = Point::new(51.5074, -0.1278).unwrap();
        (0..n)
            .map(|i| start.destination(90.0, offset_m + i as f64 * 90.0))
            .collect()
    }

    fn sample_cluster(nodes: usize) -> ClusterIndex {
        let mut c = ClusterIndex::new(GeodabConfig::default(), 10_000, nodes).unwrap();
        c.insert(TrajId::new(0), &eastward(40, 0.0));
        c.insert(TrajId::new(1), &eastward(40, 0.0).reversed());
        c.insert(TrajId::new(2), &eastward(40, 20_000.0));
        c.insert(TrajId::new(3), &eastward(60, 400_000.0));
        c
    }

    #[test]
    fn construction_validates() {
        assert!(ShardNode::new(GeodabConfig::default(), 100, 4, 3).is_ok());
        assert_eq!(
            ShardNode::new(GeodabConfig::default(), 100, 4, 4).err(),
            Some(ClusterConfigError::NodeIdOutOfRange {
                node_id: 4,
                num_nodes: 4
            })
        );
        assert!(ShardNode::new(GeodabConfig::default(), 0, 4, 0).is_err());
    }

    /// Standalone nodes fed the full corpus hold exactly the slices an
    /// in-process cluster routes to its nodes, and their merged
    /// per-shard heaps equal the cluster's (hence the monolithic
    /// index's) ranking.
    #[test]
    fn standalone_nodes_reproduce_the_cluster_partition() {
        for num_nodes in [1usize, 2, 4] {
            let cluster = sample_cluster(num_nodes);
            let mut nodes: Vec<ShardNode> = (0..num_nodes)
                .map(|i| ShardNode::new(GeodabConfig::default(), 10_000, num_nodes, i).unwrap())
                .collect();
            for (id, trajectory) in [
                (0, eastward(40, 0.0)),
                (1, eastward(40, 0.0).reversed()),
                (2, eastward(40, 20_000.0)),
                (3, eastward(60, 400_000.0)),
            ] {
                for node in &mut nodes {
                    node.insert(TrajId::new(id), &trajectory);
                }
            }
            assert_eq!(
                nodes.iter().map(ShardNode::len).collect::<Vec<_>>(),
                cluster.trajectories_per_node(),
                "{num_nodes} nodes"
            );
            for query in [
                eastward(40, 0.0),
                eastward(40, 0.0).reversed(),
                eastward(40, 1_000.0),
                eastward(60, 400_000.0),
            ] {
                let options = SearchOptions::default();
                let merged =
                    crate::merge_heaps(nodes.iter().map(|n| n.search(&query, &options)), &options);
                assert_eq!(
                    merged,
                    cluster.search(&query, &options),
                    "{num_nodes} nodes"
                );
            }
        }
    }

    #[test]
    fn shard_node_clones_the_cluster_slice() {
        let cluster = sample_cluster(3);
        for i in 0..3 {
            let node = cluster.shard_node(i).expect("in range");
            assert_eq!(node.node_id(), i);
            assert_eq!(node.len(), cluster.trajectories_per_node()[i]);
        }
        assert!(cluster.shard_node(3).is_none());
    }

    #[test]
    fn mutations_mirror_the_cluster() {
        let mut cluster = sample_cluster(2);
        let mut nodes: Vec<ShardNode> = (0..2).map(|i| cluster.shard_node(i).unwrap()).collect();
        // Replace one id and remove another, through the broadcast path.
        let replacement = self::eastward(50, 700.0);
        let fp =
            Fingerprinter::new(GeodabConfig::default()).normalize_and_fingerprint(&replacement);
        cluster.insert_fingerprints(TrajId::new(1), fp.clone());
        for node in &mut nodes {
            node.insert_fingerprints(TrajId::new(1), fp.clone());
        }
        cluster.remove(TrajId::new(0));
        for node in &mut nodes {
            node.remove(TrajId::new(0));
        }
        assert_eq!(
            nodes.iter().map(ShardNode::len).collect::<Vec<_>>(),
            cluster.trajectories_per_node()
        );
        let options = SearchOptions::default();
        for query in [eastward(40, 0.0), replacement.clone()] {
            let merged =
                crate::merge_heaps(nodes.iter().map(|n| n.search(&query, &options)), &options);
            assert_eq!(merged, cluster.search(&query, &options));
        }
    }

    #[test]
    fn snapshot_roundtrips_and_is_deterministic() {
        let cluster = sample_cluster(3);
        for i in 0..3 {
            let node = cluster.shard_node(i).unwrap();
            let bytes = node.to_snapshot();
            assert_eq!(bytes, node.to_snapshot(), "deterministic");
            let restored = ShardNode::from_snapshot(&bytes).expect("roundtrip");
            assert_eq!(restored.node_id(), node.node_id());
            assert_eq!(restored.len(), node.len());
            assert_eq!(restored.term_count(), node.term_count());
            assert_eq!(restored.to_snapshot(), bytes, "stable across a roundtrip");
            let options = SearchOptions::default();
            for query in [eastward(40, 0.0), eastward(40, 20_000.0)] {
                assert_eq!(
                    restored.search(&query, &options),
                    node.search(&query, &options)
                );
            }
        }
    }

    #[test]
    fn restored_nodes_remain_mutable() {
        let cluster = sample_cluster(2);
        let mut nodes: Vec<ShardNode> = (0..2)
            .map(|i| {
                ShardNode::from_snapshot(&cluster.shard_node(i).unwrap().to_snapshot())
                    .expect("roundtrip")
            })
            .collect();
        let trajectory = eastward(45, 300.0);
        for node in &mut nodes {
            node.insert(TrajId::new(77), &trajectory);
            node.remove(TrajId::new(77));
            node.insert(TrajId::new(78), &trajectory);
        }
        let options = SearchOptions::default();
        let merged = crate::merge_heaps(
            nodes.iter().map(|n| n.search(&trajectory, &options)),
            &options,
        );
        assert!(merged.iter().any(|h| h.id == TrajId::new(78)));
        assert!(!merged.iter().any(|h| h.id == TrajId::new(77)));
    }

    #[test]
    fn wrong_backend_and_corruption_are_rejected() {
        assert!(matches!(
            ShardNode::from_snapshot(b"garbage"),
            Err(SnapshotError::BadMagic)
        ));
        let cluster_bytes = sample_cluster(2).to_snapshot();
        assert!(matches!(
            ShardNode::from_snapshot(&cluster_bytes),
            Err(SnapshotError::WrongBackend { .. })
        ));
        // A node id beyond the node count is structural corruption.
        let node = sample_cluster(2).shard_node(1).unwrap();
        let bytes = node.to_snapshot();
        let reader = SnapshotReader::parse(&bytes).unwrap();
        let mut writer = SnapshotWriter::new(BackendKind::Node);
        for &(id, payload) in reader.sections() {
            let mut payload = payload.to_vec();
            if id == SEC_CONFIG {
                let len = payload.len();
                payload[len - 4..].copy_from_slice(&9u32.to_le_bytes());
            }
            writer.section(id, payload);
        }
        assert!(matches!(
            ShardNode::from_snapshot(&writer.finish()),
            Err(SnapshotError::Corrupt("node id out of range"))
        ));
    }

    /// The empty-fingerprint broadcast (a too-short trajectory) leaves
    /// every node untouched.
    #[test]
    fn empty_fingerprints_store_nothing() {
        let mut node = ShardNode::new(GeodabConfig::default(), 100, 2, 0).unwrap();
        node.insert(TrajId::new(5), &eastward(2, 0.0));
        assert!(node.is_empty());
        assert!(!node.remove(TrajId::new(5)));
    }
}
