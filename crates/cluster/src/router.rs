use std::error::Error;
use std::fmt;

use geodabs_core::geodab_prefix;

/// Errors constructing a [`ShardRouter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterConfigError {
    /// The prefix depth must be in `1..=31` (it addresses geodab bits).
    InvalidPrefixBits(u8),
    /// At least one shard is required.
    NoShards,
    /// At least one node is required.
    NoNodes,
    /// A standalone shard node's id must be less than the node count.
    NodeIdOutOfRange {
        /// The offending node id.
        node_id: usize,
        /// The cluster's node count.
        num_nodes: usize,
    },
}

impl fmt::Display for ClusterConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterConfigError::InvalidPrefixBits(b) => {
                write!(f, "prefix depth {b} must be between 1 and 31 bits")
            }
            ClusterConfigError::NoShards => write!(f, "cluster needs at least one shard"),
            ClusterConfigError::NoNodes => write!(f, "cluster needs at least one node"),
            ClusterConfigError::NodeIdOutOfRange { node_id, num_nodes } => {
                write!(f, "node id {node_id} out of range for {num_nodes} node(s)")
            }
        }
    }
}

impl Error for ClusterConfigError {}

/// The sharding strategy of Figure 2 (c): contiguous Z-order ranges to
/// shards (locality preserving), shards to nodes by modulo (locality
/// breaking, for balance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    prefix_bits: u8,
    num_shards: u64,
    num_nodes: usize,
}

impl ShardRouter {
    /// Creates a router for geodabs carrying a `prefix_bits`-bit geohash
    /// prefix, `num_shards` shards and `num_nodes` nodes.
    ///
    /// # Errors
    ///
    /// Returns a [`ClusterConfigError`] if any parameter is out of range.
    pub fn new(
        prefix_bits: u8,
        num_shards: u64,
        num_nodes: usize,
    ) -> Result<ShardRouter, ClusterConfigError> {
        if prefix_bits == 0 || prefix_bits >= 32 {
            return Err(ClusterConfigError::InvalidPrefixBits(prefix_bits));
        }
        if num_shards == 0 {
            return Err(ClusterConfigError::NoShards);
        }
        if num_nodes == 0 {
            return Err(ClusterConfigError::NoNodes);
        }
        Ok(ShardRouter {
            prefix_bits,
            num_shards,
            num_nodes,
        })
    }

    /// Geohash prefix depth, in bits.
    pub fn prefix_bits(&self) -> u8 {
        self.prefix_bits
    }

    /// Total number of shards.
    pub fn num_shards(&self) -> u64 {
        self.num_shards
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// `shard = ⌊cell / 2^depth · s⌋` — the locality-preserving range
    /// partition of the Z-order curve. `cell` is the raw bits of a
    /// `prefix_bits`-deep geohash.
    pub fn shard_of_cell(&self, cell: u64) -> u64 {
        debug_assert!(cell < 1u64 << self.prefix_bits, "cell exceeds prefix depth");
        ((cell as u128 * self.num_shards as u128) >> self.prefix_bits) as u64
    }

    /// The shard owning a geodab, extracted from its geohash prefix.
    pub fn shard_of_geodab(&self, geodab: u32) -> u64 {
        self.shard_of_cell(geodab_prefix(geodab, self.prefix_bits).bits())
    }

    /// `node = shard mod n` — the locality-breaking node assignment.
    pub fn node_of_shard(&self, shard: u64) -> usize {
        (shard % self.num_nodes as u64) as usize
    }

    /// The node owning a geodab.
    pub fn node_of_geodab(&self, geodab: u32) -> usize {
        self.node_of_shard(self.shard_of_geodab(geodab))
    }

    /// Distinct shards touched by a term set, sorted.
    pub fn shards_for_terms<I: IntoIterator<Item = u32>>(&self, terms: I) -> Vec<u64> {
        let mut shards: Vec<u64> = terms.into_iter().map(|t| self.shard_of_geodab(t)).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    /// Distinct nodes touched by a term set, sorted.
    pub fn nodes_for_terms<I: IntoIterator<Item = u32>>(&self, terms: I) -> Vec<usize> {
        let mut nodes: Vec<usize> = self
            .shards_for_terms(terms)
            .into_iter()
            .map(|s| self.node_of_shard(s))
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodabs_core::geodab;
    use geodabs_geo::Point;
    use proptest::prelude::*;

    #[test]
    fn construction_validates() {
        assert!(ShardRouter::new(16, 100, 10).is_ok());
        assert_eq!(
            ShardRouter::new(0, 100, 10),
            Err(ClusterConfigError::InvalidPrefixBits(0))
        );
        assert_eq!(
            ShardRouter::new(32, 100, 10),
            Err(ClusterConfigError::InvalidPrefixBits(32))
        );
        assert_eq!(
            ShardRouter::new(16, 0, 10),
            Err(ClusterConfigError::NoShards)
        );
        assert_eq!(
            ShardRouter::new(16, 100, 0),
            Err(ClusterConfigError::NoNodes)
        );
    }

    #[test]
    fn shard_mapping_is_a_monotone_range_partition() {
        let r = ShardRouter::new(16, 100, 10).unwrap();
        let mut last = 0;
        for cell in 0..(1u64 << 16) {
            let s = r.shard_of_cell(cell);
            assert!(s >= last, "z-order must map monotonically to shards");
            assert!(s < 100);
            last = s;
        }
        // First and last cells map to the extremes.
        assert_eq!(r.shard_of_cell(0), 0);
        assert_eq!(r.shard_of_cell((1 << 16) - 1), 99);
    }

    #[test]
    fn paper_formula_example() {
        // Figure 2 (c): shard = floor(geohash / 2^6 * s) with 2^6 cells.
        let r = ShardRouter::new(6, 4, 2).unwrap();
        assert_eq!(r.shard_of_cell(0), 0);
        assert_eq!(r.shard_of_cell(15), 0);
        assert_eq!(r.shard_of_cell(16), 1);
        assert_eq!(r.shard_of_cell(63), 3);
        // node = shard mod n.
        assert_eq!(r.node_of_shard(0), 0);
        assert_eq!(r.node_of_shard(1), 1);
        assert_eq!(r.node_of_shard(2), 0);
        assert_eq!(r.node_of_shard(3), 1);
    }

    #[test]
    fn nearby_geodabs_share_a_shard() {
        // Locality preservation: geodabs from the same neighborhood carry
        // the same 16-bit prefix, hence the same shard.
        let r = ShardRouter::new(16, 10_000, 10).unwrap();
        let start = Point::new(51.5074, -0.1278).unwrap();
        let g1 = geodab(&[start, start.destination(90.0, 100.0)], 16);
        let g2 = geodab(
            &[
                start.destination(0.0, 500.0),
                start.destination(45.0, 700.0),
            ],
            16,
        );
        assert_eq!(r.shard_of_geodab(g1), r.shard_of_geodab(g2));
    }

    #[test]
    fn distant_geodabs_use_different_shards() {
        let r = ShardRouter::new(16, 10_000, 10).unwrap();
        let london = Point::new(51.5074, -0.1278).unwrap();
        let tokyo = Point::new(35.68, 139.76).unwrap();
        let g1 = geodab(&[london, london.destination(90.0, 100.0)], 16);
        let g2 = geodab(&[tokyo, tokyo.destination(90.0, 100.0)], 16);
        assert_ne!(r.shard_of_geodab(g1), r.shard_of_geodab(g2));
    }

    #[test]
    fn terms_to_shards_and_nodes_dedup() {
        let r = ShardRouter::new(16, 100, 10).unwrap();
        let start = Point::new(51.5074, -0.1278).unwrap();
        let terms: Vec<u32> = (0..20)
            .map(|i| {
                geodab(
                    &[
                        start.destination(90.0, i as f64 * 50.0),
                        start.destination(90.0, i as f64 * 50.0 + 80.0),
                    ],
                    16,
                )
            })
            .collect();
        let shards = r.shards_for_terms(terms.iter().copied());
        assert_eq!(shards.len(), 1, "a local query touches one shard");
        let nodes = r.nodes_for_terms(terms);
        assert_eq!(nodes.len(), 1, "hence one node");
    }

    proptest! {
        #[test]
        fn prop_shard_and_node_in_range(
            cell in 0u64..(1 << 16), shards in 1u64..20_000, nodes in 1usize..64
        ) {
            let r = ShardRouter::new(16, shards, nodes).unwrap();
            let s = r.shard_of_cell(cell);
            prop_assert!(s < shards);
            prop_assert!(r.node_of_shard(s) < nodes);
        }

        #[test]
        fn prop_equal_shards_form_contiguous_ranges(
            shards in 1u64..512,
        ) {
            // With s shards over 2^16 cells, each shard covers a contiguous
            // range whose size differs by at most one cell-quantum.
            let r = ShardRouter::new(16, shards, 10).unwrap();
            let mut sizes = vec![0u64; shards as usize];
            for cell in 0..(1u64 << 16) {
                sizes[r.shard_of_cell(cell) as usize] += 1;
            }
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            prop_assert!(max - min <= 1, "shard sizes {min}..{max}");
        }
    }
}
