use geodabs_core::{Fingerprinter, Fingerprints, GeodabConfig};
use geodabs_traj::{TrajId, Trajectory};
use std::collections::{BTreeSet, HashMap};
use std::sync::Mutex;

use crate::{ClusterConfigError, ShardRouter};
use geodabs_index::{SearchOptions, SearchResult, TrajectoryIndex};

/// Statistics of one fan-out query, the quantities the sharding strategy
/// tries to minimize (Section III-A4: "a good sharding strategy tries to
/// minimize the number of shards that need to be contacted").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// Distinct shards holding at least one query term.
    pub shards_contacted: usize,
    /// Distinct nodes those shards live on.
    pub nodes_contacted: usize,
    /// Candidate trajectories scored across all contacted nodes.
    pub candidates_scored: usize,
}

/// Per-node storage: the posting lists of the terms routed to this node,
/// plus the fingerprint bitmaps of every trajectory those postings
/// reference (the paper stores "a reference to the trajectory bitmap" in
/// each posting entry; replication per referencing node is the
/// shared-nothing equivalent).
#[derive(Debug, Default, Clone)]
struct NodeStore {
    postings: HashMap<u32, Vec<TrajId>>,
    fingerprints: HashMap<TrajId, Fingerprints>,
    /// Posting entries per shard, for balance accounting.
    shard_load: HashMap<u64, u64>,
}

impl NodeStore {
    /// Local ranked scoring of the query against this node's candidates.
    fn score(&self, query_fp: &Fingerprints) -> Vec<SearchResult> {
        let mut seen: HashMap<TrajId, ()> = HashMap::new();
        for term in query_fp.set().iter() {
            if let Some(list) = self.postings.get(&term) {
                for &id in list {
                    seen.entry(id).or_insert(());
                }
            }
        }
        seen.into_keys()
            .map(|id| SearchResult {
                id,
                distance: query_fp.jaccard_distance(&self.fingerprints[&id]),
            })
            .collect()
    }
}

/// A simulated cluster hosting a sharded geodab index.
///
/// Indexing routes each fingerprint to its shard's node; querying fans out
/// to exactly the nodes owning the query's terms (in parallel, one scoped
/// thread per contacted node) and merges the ranked partial results.
#[derive(Debug)]
pub struct ClusterIndex {
    fingerprinter: Fingerprinter,
    router: ShardRouter,
    nodes: Vec<NodeStore>,
    /// Ids known to the coordinator, including trajectories too short to
    /// produce fingerprints (which no node stores).
    indexed: BTreeSet<TrajId>,
}

impl ClusterIndex {
    /// Creates an empty cluster index.
    ///
    /// The router's prefix depth is taken from `config.prefix_bits()` so
    /// shard routing always agrees with the fingerprints.
    ///
    /// # Errors
    ///
    /// Returns a [`ClusterConfigError`] for zero shards/nodes.
    pub fn new(
        config: GeodabConfig,
        num_shards: u64,
        num_nodes: usize,
    ) -> Result<ClusterIndex, ClusterConfigError> {
        let router = ShardRouter::new(config.prefix_bits(), num_shards, num_nodes)?;
        Ok(ClusterIndex {
            fingerprinter: Fingerprinter::new(config),
            router,
            nodes: vec![NodeStore::default(); num_nodes],
            indexed: BTreeSet::new(),
        })
    }

    /// The shard router in use.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of indexed trajectories.
    pub fn len(&self) -> usize {
        self.indexed.len()
    }

    /// Whether no trajectory has been indexed.
    pub fn is_empty(&self) -> bool {
        self.indexed.is_empty()
    }

    /// The ids of every indexed trajectory, in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = TrajId> + '_ {
        self.indexed.iter().copied()
    }

    /// Removes a trajectory from every node holding one of its postings or
    /// fingerprint replicas; returns whether the id was indexed.
    ///
    /// Costs `O(terms of id)`, not `O(postings in the cluster)`: the
    /// fingerprint replica (held by every node referencing the id) names
    /// exactly the posting lists to scrub, and the router maps each term
    /// back to the one node owning it.
    pub fn remove(&mut self, id: TrajId) -> bool {
        if !self.indexed.remove(&id) {
            return false;
        }
        // Take the first replica by value — every node holding one is
        // scrubbed below anyway, so no clone is needed.
        let Some(fp) = self
            .nodes
            .iter_mut()
            .find_map(|node| node.fingerprints.remove(&id))
        else {
            // Too short to fingerprint: the coordinator knew the id, but no
            // node stores anything for it.
            return true;
        };
        for term in fp.set().iter() {
            let shard = self.router.shard_of_geodab(term);
            let node = &mut self.nodes[self.router.node_of_shard(shard)];
            if let Some(list) = node.postings.get_mut(&term) {
                let before = list.len();
                list.retain(|&posted| posted != id);
                let scrubbed = (before - list.len()) as u64;
                if scrubbed > 0 {
                    if let Some(load) = node.shard_load.get_mut(&shard) {
                        *load = load.saturating_sub(scrubbed);
                        if *load == 0 {
                            node.shard_load.remove(&shard);
                        }
                    }
                }
                if list.is_empty() {
                    node.postings.remove(&term);
                }
            }
        }
        for node in &mut self.nodes {
            node.fingerprints.remove(&id);
        }
        true
    }

    /// Indexes a trajectory: fingerprints it once, then routes each
    /// geodab's posting to the node owning its shard.
    pub fn insert(&mut self, id: TrajId, trajectory: &Trajectory) {
        let fp = self.fingerprinter.normalize_and_fingerprint(trajectory);
        self.insert_fingerprints(id, fp);
    }

    /// Indexes a batch, fingerprinting trajectories in parallel across
    /// `threads` scoped worker threads and then routing the postings
    /// sequentially. Produces exactly the same index as repeated
    /// [`ClusterIndex::insert`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn insert_batch(&mut self, items: &[(TrajId, &Trajectory)], threads: usize) {
        assert!(threads > 0, "need at least one worker thread");
        let fingerprinter = self.fingerprinter;
        let chunk = items.len().div_ceil(threads).max(1);
        let fps: Mutex<Vec<(usize, TrajId, Fingerprints)>> =
            Mutex::new(Vec::with_capacity(items.len()));
        std::thread::scope(|scope| {
            for (chunk_index, slice) in items.chunks(chunk).enumerate() {
                let fps = &fps;
                let base = chunk_index * chunk;
                scope.spawn(move || {
                    let local: Vec<(usize, TrajId, Fingerprints)> = slice
                        .iter()
                        .enumerate()
                        .map(|(i, &(id, t))| {
                            (base + i, id, fingerprinter.normalize_and_fingerprint(t))
                        })
                        .collect();
                    fps.lock()
                        .expect("fingerprinting threads never panic")
                        .extend(local);
                });
            }
        });
        let mut fps = fps
            .into_inner()
            .expect("fingerprinting threads never panic");
        // Deterministic routing order regardless of thread interleaving; the
        // original position breaks ties so a duplicated id keeps its *last*
        // occurrence under replace-on-reinsert, exactly like repeated
        // `insert` calls would.
        fps.sort_by_key(|&(index, id, _)| (id, index));
        for (_, id, fp) in fps {
            self.insert_fingerprints(id, fp);
        }
    }

    /// Routes pre-computed fingerprints to the nodes owning their shards.
    /// Re-inserting an existing id replaces its previous fingerprints.
    pub fn insert_fingerprints(&mut self, id: TrajId, fp: Fingerprints) {
        self.remove(id);
        let mut touched: Vec<usize> = Vec::new();
        for term in fp.set().iter() {
            let shard = self.router.shard_of_geodab(term);
            let node_idx = self.router.node_of_shard(shard);
            let node = &mut self.nodes[node_idx];
            let list = node.postings.entry(term).or_default();
            debug_assert!(!list.contains(&id), "remove() scrubbed this id");
            list.push(id);
            *node.shard_load.entry(shard).or_insert(0) += 1;
            if !touched.contains(&node_idx) {
                touched.push(node_idx);
            }
        }
        for node_idx in touched {
            self.nodes[node_idx].fingerprints.insert(id, fp.clone());
        }
        self.indexed.insert(id);
    }

    /// Ranked fan-out query with routing statistics.
    ///
    /// Only the nodes owning at least one query term are contacted; each
    /// contacted node scores its local candidates on its own thread and
    /// the coordinator merges, deduplicates and finalizes the ranking.
    pub fn search_with_stats(
        &self,
        query: &Trajectory,
        options: &SearchOptions,
    ) -> (Vec<SearchResult>, QueryStats) {
        let query_fp = self.fingerprinter.normalize_and_fingerprint(query);
        let shards = self.router.shards_for_terms(query_fp.set().iter());
        let node_ids: Vec<usize> = {
            let mut v: Vec<usize> = shards
                .iter()
                .map(|&s| self.router.node_of_shard(s))
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let partials: Mutex<Vec<SearchResult>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for &ni in &node_ids {
                let node = &self.nodes[ni];
                let query_fp = &query_fp;
                let partials = &partials;
                scope.spawn(move || {
                    let local = node.score(query_fp);
                    partials
                        .lock()
                        .expect("scoring threads never panic")
                        .extend(local);
                });
            }
        });
        let mut merged = partials.into_inner().expect("scoring threads never panic");
        let scored = merged.len();
        // A trajectory referenced from several nodes is scored with the
        // same full bitmap everywhere; deduplicate by id.
        merged.sort_by_key(|a| a.id);
        merged.dedup_by(|a, b| a.id == b.id);
        let hits = crate::cluster::finalize(merged, options);
        (
            hits,
            QueryStats {
                shards_contacted: shards.len(),
                nodes_contacted: node_ids.len(),
                candidates_scored: scored,
            },
        )
    }

    /// Ranked fan-out query (see [`ClusterIndex::search_with_stats`]).
    pub fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult> {
        self.search_with_stats(query, options).0
    }

    /// Re-routes every shard onto a different node count, migrating
    /// posting lists and fingerprint replicas — the elastic version of
    /// the `node = shard mod n` assignment. Queries before and after
    /// resizing return identical results; only placement changes.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterConfigError::NoNodes`] if `num_nodes` is zero.
    pub fn resize(&mut self, num_nodes: usize) -> Result<(), ClusterConfigError> {
        let new_router = ShardRouter::new(
            self.router.prefix_bits(),
            self.router.num_shards(),
            num_nodes,
        )?;
        let mut new_nodes = vec![NodeStore::default(); num_nodes];
        for node in self.nodes.drain(..) {
            let NodeStore {
                postings,
                fingerprints,
                ..
            } = node;
            for (term, list) in postings {
                let shard = new_router.shard_of_geodab(term);
                let target = &mut new_nodes[new_router.node_of_shard(shard)];
                for id in list {
                    let entry = target.postings.entry(term).or_default();
                    if entry.last() != Some(&id) && !entry.contains(&id) {
                        entry.push(id);
                        *target.shard_load.entry(shard).or_insert(0) += 1;
                        // The fingerprint replica follows its postings.
                        target
                            .fingerprints
                            .entry(id)
                            .or_insert_with(|| fingerprints[&id].clone());
                    }
                }
            }
        }
        self.router = new_router;
        self.nodes = new_nodes;
        Ok(())
    }

    /// Posting entries per node — the load balance picture of Figure 16.
    pub fn postings_per_node(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|n| n.shard_load.values().sum())
            .collect()
    }

    /// Distinct trajectories referenced per node.
    pub fn trajectories_per_node(&self) -> Vec<usize> {
        self.nodes.iter().map(|n| n.fingerprints.len()).collect()
    }

    /// Number of non-empty shards.
    pub fn active_shards(&self) -> usize {
        self.nodes.iter().map(|n| n.shard_load.len()).sum()
    }
}

/// The cluster is itself a [`TrajectoryIndex`], so evaluation and any
/// other index-generic code runs unchanged against a sharded deployment.
/// The trait's default `insert_batch` is overridden to reuse the
/// multi-threaded batch fingerprinting path.
impl TrajectoryIndex for ClusterIndex {
    fn insert(&mut self, id: TrajId, trajectory: &Trajectory) {
        ClusterIndex::insert(self, id, trajectory);
    }

    fn remove(&mut self, id: TrajId) -> bool {
        ClusterIndex::remove(self, id)
    }

    fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult> {
        ClusterIndex::search(self, query, options)
    }

    fn len(&self) -> usize {
        ClusterIndex::len(self)
    }

    fn ids(&self) -> impl Iterator<Item = TrajId> + '_ {
        ClusterIndex::ids(self)
    }

    fn insert_batch<'a, I>(&mut self, items: I)
    where
        I: IntoIterator<Item = (TrajId, &'a Trajectory)>,
    {
        let items: Vec<(TrajId, &Trajectory)> = items.into_iter().collect();
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        ClusterIndex::insert_batch(self, &items, threads);
    }
}

/// Re-implementation of the single-index result finalization (sorting,
/// thresholding, limiting) for merged cluster results; kept identical so a
/// cluster query returns exactly what a monolithic index would.
fn finalize(mut hits: Vec<SearchResult>, options: &SearchOptions) -> Vec<SearchResult> {
    hits.retain(|h| h.distance <= options.max_distance);
    hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
    if let Some(limit) = options.limit {
        hits.truncate(limit);
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodabs_geo::Point;
    use geodabs_index::{GeodabIndex, TrajectoryIndex};

    fn start() -> Point {
        Point::new(51.5074, -0.1278).unwrap()
    }

    fn eastward(n: usize, offset_m: f64) -> Trajectory {
        (0..n)
            .map(|i| start().destination(90.0, offset_m + i as f64 * 90.0))
            .collect()
    }

    fn sample_cluster() -> ClusterIndex {
        let mut c = ClusterIndex::new(GeodabConfig::default(), 10_000, 10).unwrap();
        c.insert(TrajId::new(0), &eastward(40, 0.0));
        c.insert(TrajId::new(1), &eastward(40, 0.0).reversed());
        c.insert(TrajId::new(2), &eastward(40, 20_000.0));
        c
    }

    #[test]
    fn insert_and_counts() {
        let c = sample_cluster();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(c.active_shards() >= 1);
        assert_eq!(c.postings_per_node().len(), 10);
        assert!(c.postings_per_node().iter().sum::<u64>() > 0);
    }

    #[test]
    fn batch_insert_equals_sequential_insert() {
        let trajectories: Vec<Trajectory> = vec![
            eastward(40, 0.0),
            eastward(40, 0.0).reversed(),
            eastward(40, 5_000.0),
            eastward(60, 1_000.0),
            eastward(50, 2_000.0),
        ];
        let mut sequential = ClusterIndex::new(GeodabConfig::default(), 10_000, 10).unwrap();
        for (i, t) in trajectories.iter().enumerate() {
            sequential.insert(TrajId::new(i as u32), t);
        }
        let items: Vec<(TrajId, &Trajectory)> = trajectories
            .iter()
            .enumerate()
            .map(|(i, t)| (TrajId::new(i as u32), t))
            .collect();
        for threads in [1usize, 2, 4] {
            let mut batched = ClusterIndex::new(GeodabConfig::default(), 10_000, 10).unwrap();
            batched.insert_batch(&items, threads);
            assert_eq!(batched.len(), sequential.len());
            assert_eq!(batched.postings_per_node(), sequential.postings_per_node());
            for t in &trajectories {
                assert_eq!(
                    batched.search(t, &SearchOptions::default()),
                    sequential.search(t, &SearchOptions::default()),
                    "{threads} threads"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let mut c = ClusterIndex::new(GeodabConfig::default(), 10, 2).unwrap();
        c.insert_batch(&[], 0);
    }

    #[test]
    fn cluster_search_matches_monolithic_index() {
        let c = sample_cluster();
        let mut mono = GeodabIndex::new(GeodabConfig::default());
        mono.insert(TrajId::new(0), &eastward(40, 0.0));
        mono.insert(TrajId::new(1), &eastward(40, 0.0).reversed());
        mono.insert(TrajId::new(2), &eastward(40, 20_000.0));
        for query in [
            eastward(40, 0.0),
            eastward(40, 0.0).reversed(),
            eastward(40, 20_000.0),
            eastward(40, 1_000.0),
        ] {
            let cluster_hits = c.search(&query, &SearchOptions::default());
            let mono_hits = mono.search(&query, &SearchOptions::default());
            assert_eq!(cluster_hits, mono_hits, "query mismatch");
        }
    }

    #[test]
    fn local_query_touches_few_nodes() {
        let c = sample_cluster();
        let (_, stats) = c.search_with_stats(&eastward(40, 0.0), &SearchOptions::default());
        // All fingerprints of a city-scale trajectory share one 16-bit
        // cell, hence one shard and one node.
        assert_eq!(stats.shards_contacted, 1);
        assert_eq!(stats.nodes_contacted, 1);
        assert!(stats.candidates_scored >= 1);
    }

    #[test]
    fn short_query_contacts_nothing() {
        let c = sample_cluster();
        let (hits, stats) = c.search_with_stats(&eastward(3, 0.0), &SearchOptions::default());
        assert!(hits.is_empty());
        assert_eq!(stats.shards_contacted, 0);
        assert_eq!(stats.nodes_contacted, 0);
    }

    #[test]
    fn options_apply_after_merge() {
        let c = sample_cluster();
        let all = c.search(&eastward(40, 0.0), &SearchOptions::default());
        let limited = c.search(&eastward(40, 0.0), &SearchOptions::default().limit(1));
        assert_eq!(limited.len(), 1);
        assert_eq!(limited[0], all[0]);
        let tight = c.search(
            &eastward(40, 0.0),
            &SearchOptions::default().max_distance(0.2),
        );
        assert!(tight.iter().all(|h| h.distance <= 0.2));
    }

    #[test]
    fn resize_preserves_query_results() {
        let mut c = sample_cluster();
        let queries = [
            eastward(40, 0.0),
            eastward(40, 0.0).reversed(),
            eastward(40, 20_000.0),
        ];
        let before: Vec<_> = queries
            .iter()
            .map(|q| c.search(q, &SearchOptions::default()))
            .collect();
        for nodes in [3usize, 25, 1, 10] {
            c.resize(nodes).unwrap();
            assert_eq!(c.postings_per_node().len(), nodes);
            for (q, expected) in queries.iter().zip(&before) {
                assert_eq!(
                    &c.search(q, &SearchOptions::default()),
                    expected,
                    "{nodes} nodes"
                );
            }
        }
        assert!(c.resize(0).is_err());
    }

    #[test]
    fn resize_conserves_postings() {
        let mut c = sample_cluster();
        let total_before: u64 = c.postings_per_node().iter().sum();
        c.resize(4).unwrap();
        let total_after: u64 = c.postings_per_node().iter().sum();
        assert_eq!(total_before, total_after);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn single_node_cluster_works() {
        let mut c = ClusterIndex::new(GeodabConfig::default(), 1, 1).unwrap();
        c.insert(TrajId::new(0), &eastward(40, 0.0));
        let hits = c.search(&eastward(40, 0.0), &SearchOptions::default());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].distance, 0.0);
    }

    #[test]
    fn invalid_configuration_errors() {
        assert!(ClusterIndex::new(GeodabConfig::default(), 0, 10).is_err());
        assert!(ClusterIndex::new(GeodabConfig::default(), 100, 0).is_err());
    }
}
