use geodabs_core::{Fingerprinter, Fingerprints, GeodabConfig};
use geodabs_roaring::RoaringBitmap;
use geodabs_traj::{TrajId, Trajectory};
use std::collections::{BTreeSet, HashMap};
use std::sync::Mutex;

use crate::{ClusterConfigError, ShardRouter};
use geodabs_index::engine::{IdInterner, TopK};
use geodabs_index::{SearchOptions, SearchResult, TrajectoryIndex};

/// Statistics of one fan-out query, the quantities the sharding strategy
/// tries to minimize (Section III-A4: "a good sharding strategy tries to
/// minimize the number of shards that need to be contacted").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// Distinct shards holding at least one query term.
    pub shards_contacted: usize,
    /// Distinct nodes those shards live on.
    pub nodes_contacted: usize,
    /// Candidate trajectories scored across all contacted nodes.
    pub candidates_scored: usize,
}

/// Per-node storage: the posting lists of the terms routed to this node,
/// plus the fingerprint bitmaps of every trajectory those postings
/// reference (the paper stores "a reference to the trajectory bitmap" in
/// each posting entry; replication per referencing node is the
/// shared-nothing equivalent).
#[derive(Debug, Default, Clone)]
pub(crate) struct NodeStore {
    /// Posting lists of this node's terms, as roaring bitmaps of dense
    /// (node-locally interned) trajectory slots.
    pub(crate) postings: HashMap<u32, RoaringBitmap>,
    /// The node's `TrajId ↔ dense` interning table.
    pub(crate) interner: IdInterner,
    pub(crate) fingerprints: HashMap<TrajId, Fingerprints>,
    /// Posting entries per shard, for balance accounting.
    pub(crate) shard_load: HashMap<u64, u64>,
}

impl NodeStore {
    /// Adds `id` to the posting list of `term`.
    pub(crate) fn add_posting(&mut self, term: u32, id: TrajId) {
        let dense = self.interner.intern(id);
        let newly = self.postings.entry(term).or_default().insert(dense);
        debug_assert!(newly, "remove() scrubbed this id");
    }

    /// Scrubs `id` from the posting list of `term`; returns whether an
    /// entry was removed.
    pub(crate) fn remove_posting(&mut self, term: u32, id: TrajId) -> bool {
        let Some(dense) = self.interner.dense(id) else {
            return false;
        };
        let Some(list) = self.postings.get_mut(&term) else {
            return false;
        };
        let removed = list.remove(dense);
        if list.is_empty() {
            self.postings.remove(&term);
        }
        removed
    }

    /// Forgets `id` entirely: frees its dense slot and drops the
    /// fingerprint replica. Call after scrubbing its postings.
    pub(crate) fn drop_id(&mut self, id: TrajId) {
        self.interner.release(id);
        self.fingerprints.remove(&id);
    }

    /// Local ranked scoring: candidates are the union of this node's
    /// posting bitmaps for the query's terms, each scored exactly against
    /// its full fingerprint replica and kept in a bounded top-k heap —
    /// the per-shard heap the coordinator merges.
    pub(crate) fn score(
        &self,
        query_fp: &Fingerprints,
        options: &SearchOptions,
    ) -> (Vec<SearchResult>, usize) {
        let mut candidates = RoaringBitmap::new();
        for term in query_fp.set().iter() {
            if let Some(list) = self.postings.get(&term) {
                candidates |= list;
            }
        }
        let scored = candidates.len() as usize;
        let mut topk = TopK::new(options);
        for dense in candidates.iter() {
            let id = self.interner.resolve(dense);
            topk.push(SearchResult {
                id,
                distance: query_fp.jaccard_distance(&self.fingerprints[&id]),
            });
        }
        (topk.into_sorted(), scored)
    }
}

/// Merges per-shard top-k heaps into the exact global ranking.
///
/// A trajectory referenced from several nodes is scored with the same
/// full fingerprint replica everywhere, so duplicates are identical;
/// deduplicate by id, then re-rank the union under the same options.
/// This is the one merge both the in-process [`ClusterIndex`]
/// coordinator and the network frontend use, so sharded answers are
/// bit-identical to the monolithic index by construction.
pub fn merge_heaps<I>(partials: I, options: &SearchOptions) -> Vec<SearchResult>
where
    I: IntoIterator<Item = Vec<SearchResult>>,
{
    let mut merged: Vec<SearchResult> = Vec::new();
    for heap in partials {
        merged.extend(heap);
    }
    merged.sort_by_key(|a| a.id);
    merged.dedup_by(|a, b| a.id == b.id);
    let mut topk = TopK::new(options);
    for hit in merged {
        topk.push(hit);
    }
    topk.into_sorted()
}

/// A simulated cluster hosting a sharded geodab index.
///
/// Indexing routes each fingerprint to its shard's node; querying fans out
/// to exactly the nodes owning the query's terms (in parallel, one scoped
/// thread per contacted node) and merges the ranked partial results.
#[derive(Debug)]
pub struct ClusterIndex {
    pub(crate) fingerprinter: Fingerprinter,
    pub(crate) router: ShardRouter,
    pub(crate) nodes: Vec<NodeStore>,
    /// Ids known to the coordinator, including trajectories too short to
    /// produce fingerprints (which no node stores).
    pub(crate) indexed: BTreeSet<TrajId>,
}

impl ClusterIndex {
    /// Creates an empty cluster index.
    ///
    /// The router's prefix depth is taken from `config.prefix_bits()` so
    /// shard routing always agrees with the fingerprints.
    ///
    /// # Errors
    ///
    /// Returns a [`ClusterConfigError`] for zero shards/nodes.
    pub fn new(
        config: GeodabConfig,
        num_shards: u64,
        num_nodes: usize,
    ) -> Result<ClusterIndex, ClusterConfigError> {
        let router = ShardRouter::new(config.prefix_bits(), num_shards, num_nodes)?;
        Ok(ClusterIndex {
            fingerprinter: Fingerprinter::new(config),
            router,
            nodes: vec![NodeStore::default(); num_nodes],
            indexed: BTreeSet::new(),
        })
    }

    /// The shard router in use.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The fingerprinting configuration in use.
    pub fn config(&self) -> &GeodabConfig {
        self.fingerprinter.config()
    }

    /// Number of indexed trajectories.
    pub fn len(&self) -> usize {
        self.indexed.len()
    }

    /// Whether no trajectory has been indexed.
    pub fn is_empty(&self) -> bool {
        self.indexed.is_empty()
    }

    /// The ids of every indexed trajectory, in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = TrajId> + '_ {
        self.indexed.iter().copied()
    }

    /// Removes a trajectory from every node holding one of its postings or
    /// fingerprint replicas; returns whether the id was indexed.
    ///
    /// Costs `O(terms of id)`, not `O(postings in the cluster)`: the
    /// fingerprint replica (held by every node referencing the id) names
    /// exactly the posting lists to scrub, and the router maps each term
    /// back to the one node owning it.
    pub fn remove(&mut self, id: TrajId) -> bool {
        if !self.indexed.remove(&id) {
            return false;
        }
        // Take the first replica by value — every node holding one is
        // scrubbed below anyway, so no clone is needed.
        let Some(fp) = self
            .nodes
            .iter_mut()
            .find_map(|node| node.fingerprints.remove(&id))
        else {
            // Too short to fingerprint: the coordinator knew the id, but no
            // node stores anything for it.
            return true;
        };
        for term in fp.set().iter() {
            let shard = self.router.shard_of_geodab(term);
            let node = &mut self.nodes[self.router.node_of_shard(shard)];
            if node.remove_posting(term, id) {
                if let Some(load) = node.shard_load.get_mut(&shard) {
                    *load -= 1;
                    if *load == 0 {
                        node.shard_load.remove(&shard);
                    }
                }
            }
        }
        for node in &mut self.nodes {
            node.drop_id(id);
        }
        true
    }

    /// Indexes a trajectory: fingerprints it once, then routes each
    /// geodab's posting to the node owning its shard.
    pub fn insert(&mut self, id: TrajId, trajectory: &Trajectory) {
        let fp = self.fingerprinter.normalize_and_fingerprint(trajectory);
        self.insert_fingerprints(id, fp);
    }

    /// Indexes a batch: trajectories are fingerprinted in parallel across
    /// `threads` scoped worker threads, then the postings ship to the
    /// shard nodes **concurrently** — each node applies its own slice of
    /// the batch on its own scoped thread (node stores are disjoint, so no
    /// lock is ever taken on the hot path). Produces exactly the same
    /// index as repeated [`ClusterIndex::insert`] calls, including
    /// last-occurrence-wins semantics for ids repeated within the batch.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn insert_batch_threads(&mut self, items: &[(TrajId, &Trajectory)], threads: usize) {
        let fps = geodabs_index::batch::parallel_map(items, threads, |&(id, trajectory)| {
            (id, self.fingerprinter.normalize_and_fingerprint(trajectory))
        });
        // Repeated inserts are replace-on-reinsert, so only the *last*
        // occurrence of an id in the batch survives; drop the others up
        // front (in input order, like a sequential loop would resolve it).
        let mut last_of: HashMap<TrajId, usize> = HashMap::with_capacity(fps.len());
        for (position, &(id, _)) in fps.iter().enumerate() {
            last_of.insert(id, position);
        }
        let batch: Vec<(TrajId, Fingerprints)> = fps
            .into_iter()
            .enumerate()
            .filter(|(position, (id, _))| last_of[id] == *position)
            .map(|(_, entry)| entry)
            .collect();
        // Scrub previous contents of re-inserted ids while the nodes are
        // still quiescent.
        for &(id, _) in &batch {
            self.remove(id);
        }
        // Route every posting to its node up front; `item` indexes into
        // `batch`. Per-node work lists preserve batch order, so each node
        // interns ids in exactly the order sequential inserts would.
        struct NodeWork {
            /// `(term, shard, item)` posting entries owned by this node.
            postings: Vec<(u32, u64, u32)>,
            /// Batch items whose fingerprint replica this node stores.
            replicas: Vec<u32>,
        }
        let mut work: Vec<NodeWork> = (0..self.nodes.len())
            .map(|_| NodeWork {
                postings: Vec::new(),
                replicas: Vec::new(),
            })
            .collect();
        for (item, (_, fp)) in batch.iter().enumerate() {
            let item = item as u32;
            for term in fp.set().iter() {
                let shard = self.router.shard_of_geodab(term);
                let node_work = &mut work[self.router.node_of_shard(shard)];
                node_work.postings.push((term, shard, item));
                if node_work.replicas.last() != Some(&item) {
                    node_work.replicas.push(item);
                }
            }
        }
        // Ship concurrently: one scoped thread per node with work, each
        // holding a disjoint `&mut NodeStore`.
        std::thread::scope(|scope| {
            for (node, node_work) in self.nodes.iter_mut().zip(&work) {
                if node_work.postings.is_empty() {
                    continue;
                }
                let batch = &batch;
                scope.spawn(move || {
                    for &(term, shard, item) in &node_work.postings {
                        node.add_posting(term, batch[item as usize].0);
                        *node.shard_load.entry(shard).or_insert(0) += 1;
                    }
                    for &item in &node_work.replicas {
                        let (id, fp) = &batch[item as usize];
                        node.fingerprints.insert(*id, fp.clone());
                    }
                });
            }
        });
        for &(id, _) in &batch {
            self.indexed.insert(id);
        }
    }

    /// Routes pre-computed fingerprints to the nodes owning their shards.
    /// Re-inserting an existing id replaces its previous fingerprints.
    pub fn insert_fingerprints(&mut self, id: TrajId, fp: Fingerprints) {
        self.remove(id);
        let mut touched: Vec<usize> = Vec::new();
        for term in fp.set().iter() {
            let shard = self.router.shard_of_geodab(term);
            let node_idx = self.router.node_of_shard(shard);
            let node = &mut self.nodes[node_idx];
            node.add_posting(term, id);
            *node.shard_load.entry(shard).or_insert(0) += 1;
            if !touched.contains(&node_idx) {
                touched.push(node_idx);
            }
        }
        for node_idx in touched {
            self.nodes[node_idx].fingerprints.insert(id, fp.clone());
        }
        self.indexed.insert(id);
    }

    /// Ranked fan-out query with routing statistics.
    ///
    /// Only the nodes owning at least one query term are contacted; each
    /// contacted node scores its local candidates into a bounded top-k
    /// heap on its own scoped thread, and the coordinator merges the
    /// per-shard heaps — deduplicating replicas by id — into the global
    /// ranking. Returns exactly what a monolithic [`geodabs_index::GeodabIndex`]
    /// holding the same trajectories would.
    pub fn search_with_stats(
        &self,
        query: &Trajectory,
        options: &SearchOptions,
    ) -> (Vec<SearchResult>, QueryStats) {
        let query_fp = self.fingerprinter.normalize_and_fingerprint(query);
        self.search_fingerprints_with_stats(&query_fp, options)
    }

    /// Ranked fan-out query starting from pre-computed query fingerprints
    /// (the client-side-fingerprinting twin of
    /// [`ClusterIndex::insert_fingerprints`]); see
    /// [`ClusterIndex::search_with_stats`].
    pub fn search_fingerprints_with_stats(
        &self,
        query_fp: &Fingerprints,
        options: &SearchOptions,
    ) -> (Vec<SearchResult>, QueryStats) {
        let shards = self.router.shards_for_terms(query_fp.set().iter());
        let node_ids: Vec<usize> = {
            let mut v: Vec<usize> = shards
                .iter()
                .map(|&s| self.router.node_of_shard(s))
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let partials: Mutex<Vec<(Vec<SearchResult>, usize)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for &ni in &node_ids {
                let node = &self.nodes[ni];
                let partials = &partials;
                scope.spawn(move || {
                    let local = node.score(query_fp, options);
                    partials
                        .lock()
                        .expect("scoring threads never panic")
                        .push(local);
                });
            }
        });
        let mut heaps: Vec<Vec<SearchResult>> = Vec::new();
        let mut scored = 0usize;
        for (heap, n) in partials.into_inner().expect("scoring threads never panic") {
            heaps.push(heap);
            scored += n;
        }
        (
            merge_heaps(heaps, options),
            QueryStats {
                shards_contacted: shards.len(),
                nodes_contacted: node_ids.len(),
                candidates_scored: scored,
            },
        )
    }

    /// Ranked fan-out query (see [`ClusterIndex::search_with_stats`]).
    pub fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult> {
        self.search_with_stats(query, options).0
    }

    /// Ranked fan-out query from pre-computed fingerprints (see
    /// [`ClusterIndex::search_fingerprints_with_stats`]).
    pub fn search_fingerprints(
        &self,
        query_fp: &Fingerprints,
        options: &SearchOptions,
    ) -> Vec<SearchResult> {
        self.search_fingerprints_with_stats(query_fp, options).0
    }

    /// Re-routes every shard onto a different node count, migrating
    /// posting lists and fingerprint replicas — the elastic version of
    /// the `node = shard mod n` assignment. Queries before and after
    /// resizing return identical results; only placement changes.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterConfigError::NoNodes`] if `num_nodes` is zero.
    pub fn resize(&mut self, num_nodes: usize) -> Result<(), ClusterConfigError> {
        let new_router = ShardRouter::new(
            self.router.prefix_bits(),
            self.router.num_shards(),
            num_nodes,
        )?;
        let mut new_nodes = vec![NodeStore::default(); num_nodes];
        for node in self.nodes.drain(..) {
            let NodeStore {
                postings,
                interner,
                fingerprints,
                ..
            } = node;
            for (term, list) in postings {
                let shard = new_router.shard_of_geodab(term);
                let target = &mut new_nodes[new_router.node_of_shard(shard)];
                for dense in list.iter() {
                    let id = interner.resolve(dense);
                    let target_dense = target.interner.intern(id);
                    if target
                        .postings
                        .entry(term)
                        .or_default()
                        .insert(target_dense)
                    {
                        *target.shard_load.entry(shard).or_insert(0) += 1;
                        // The fingerprint replica follows its postings.
                        target
                            .fingerprints
                            .entry(id)
                            .or_insert_with(|| fingerprints[&id].clone());
                    }
                }
            }
        }
        self.router = new_router;
        self.nodes = new_nodes;
        Ok(())
    }

    /// Posting entries per node — the load balance picture of Figure 16.
    pub fn postings_per_node(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|n| n.shard_load.values().sum())
            .collect()
    }

    /// Distinct trajectories referenced per node.
    pub fn trajectories_per_node(&self) -> Vec<usize> {
        self.nodes.iter().map(|n| n.fingerprints.len()).collect()
    }

    /// Number of non-empty shards.
    pub fn active_shards(&self) -> usize {
        self.nodes.iter().map(|n| n.shard_load.len()).sum()
    }
}

/// The cluster is itself a [`TrajectoryIndex`], so evaluation and any
/// other index-generic code runs unchanged against a sharded deployment.
/// The trait's default `insert_batch` is overridden to reuse the
/// multi-threaded batch fingerprinting path.
impl TrajectoryIndex for ClusterIndex {
    fn insert(&mut self, id: TrajId, trajectory: &Trajectory) {
        ClusterIndex::insert(self, id, trajectory);
    }

    fn remove(&mut self, id: TrajId) -> bool {
        ClusterIndex::remove(self, id)
    }

    fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult> {
        ClusterIndex::search(self, query, options)
    }

    fn len(&self) -> usize {
        ClusterIndex::len(self)
    }

    fn ids(&self) -> impl Iterator<Item = TrajId> + '_ {
        ClusterIndex::ids(self)
    }

    fn insert_batch<'a, I>(&mut self, items: I)
    where
        I: IntoIterator<Item = (TrajId, &'a Trajectory)>,
    {
        let items: Vec<(TrajId, &Trajectory)> = items.into_iter().collect();
        let threads = geodabs_index::batch::default_threads();
        ClusterIndex::insert_batch_threads(self, &items, threads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodabs_geo::Point;
    use geodabs_index::{GeodabIndex, TrajectoryIndex};

    fn start() -> Point {
        Point::new(51.5074, -0.1278).unwrap()
    }

    fn eastward(n: usize, offset_m: f64) -> Trajectory {
        (0..n)
            .map(|i| start().destination(90.0, offset_m + i as f64 * 90.0))
            .collect()
    }

    fn sample_cluster() -> ClusterIndex {
        let mut c = ClusterIndex::new(GeodabConfig::default(), 10_000, 10).unwrap();
        c.insert(TrajId::new(0), &eastward(40, 0.0));
        c.insert(TrajId::new(1), &eastward(40, 0.0).reversed());
        c.insert(TrajId::new(2), &eastward(40, 20_000.0));
        c
    }

    #[test]
    fn insert_and_counts() {
        let c = sample_cluster();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(c.active_shards() >= 1);
        assert_eq!(c.postings_per_node().len(), 10);
        assert!(c.postings_per_node().iter().sum::<u64>() > 0);
    }

    #[test]
    fn batch_insert_equals_sequential_insert() {
        let trajectories: Vec<Trajectory> = vec![
            eastward(40, 0.0),
            eastward(40, 0.0).reversed(),
            eastward(40, 5_000.0),
            eastward(60, 1_000.0),
            eastward(50, 2_000.0),
        ];
        let mut sequential = ClusterIndex::new(GeodabConfig::default(), 10_000, 10).unwrap();
        for (i, t) in trajectories.iter().enumerate() {
            sequential.insert(TrajId::new(i as u32), t);
        }
        let items: Vec<(TrajId, &Trajectory)> = trajectories
            .iter()
            .enumerate()
            .map(|(i, t)| (TrajId::new(i as u32), t))
            .collect();
        for threads in [1usize, 2, 4] {
            let mut batched = ClusterIndex::new(GeodabConfig::default(), 10_000, 10).unwrap();
            batched.insert_batch_threads(&items, threads);
            assert_eq!(batched.len(), sequential.len());
            assert_eq!(batched.postings_per_node(), sequential.postings_per_node());
            for t in &trajectories {
                assert_eq!(
                    batched.search(t, &SearchOptions::default()),
                    sequential.search(t, &SearchOptions::default()),
                    "{threads} threads"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let mut c = ClusterIndex::new(GeodabConfig::default(), 10, 2).unwrap();
        c.insert_batch_threads(&[], 0);
    }

    #[test]
    fn cluster_search_matches_monolithic_index() {
        let c = sample_cluster();
        let mut mono = GeodabIndex::new(GeodabConfig::default());
        mono.insert(TrajId::new(0), &eastward(40, 0.0));
        mono.insert(TrajId::new(1), &eastward(40, 0.0).reversed());
        mono.insert(TrajId::new(2), &eastward(40, 20_000.0));
        for query in [
            eastward(40, 0.0),
            eastward(40, 0.0).reversed(),
            eastward(40, 20_000.0),
            eastward(40, 1_000.0),
        ] {
            let cluster_hits = c.search(&query, &SearchOptions::default());
            let mono_hits = mono.search(&query, &SearchOptions::default());
            assert_eq!(cluster_hits, mono_hits, "query mismatch");
        }
    }

    #[test]
    fn local_query_touches_few_nodes() {
        let c = sample_cluster();
        let (_, stats) = c.search_with_stats(&eastward(40, 0.0), &SearchOptions::default());
        // All fingerprints of a city-scale trajectory share one 16-bit
        // cell, hence one shard and one node.
        assert_eq!(stats.shards_contacted, 1);
        assert_eq!(stats.nodes_contacted, 1);
        assert!(stats.candidates_scored >= 1);
    }

    #[test]
    fn short_query_contacts_nothing() {
        let c = sample_cluster();
        let (hits, stats) = c.search_with_stats(&eastward(3, 0.0), &SearchOptions::default());
        assert!(hits.is_empty());
        assert_eq!(stats.shards_contacted, 0);
        assert_eq!(stats.nodes_contacted, 0);
    }

    #[test]
    fn options_apply_after_merge() {
        let c = sample_cluster();
        let all = c.search(&eastward(40, 0.0), &SearchOptions::default());
        let limited = c.search(&eastward(40, 0.0), &SearchOptions::default().limit(1));
        assert_eq!(limited.len(), 1);
        assert_eq!(limited[0], all[0]);
        let tight = c.search(
            &eastward(40, 0.0),
            &SearchOptions::default().max_distance(0.2),
        );
        assert!(tight.iter().all(|h| h.distance <= 0.2));
    }

    #[test]
    fn resize_preserves_query_results() {
        let mut c = sample_cluster();
        let queries = [
            eastward(40, 0.0),
            eastward(40, 0.0).reversed(),
            eastward(40, 20_000.0),
        ];
        let before: Vec<_> = queries
            .iter()
            .map(|q| c.search(q, &SearchOptions::default()))
            .collect();
        for nodes in [3usize, 25, 1, 10] {
            c.resize(nodes).unwrap();
            assert_eq!(c.postings_per_node().len(), nodes);
            for (q, expected) in queries.iter().zip(&before) {
                assert_eq!(
                    &c.search(q, &SearchOptions::default()),
                    expected,
                    "{nodes} nodes"
                );
            }
        }
        assert!(c.resize(0).is_err());
    }

    #[test]
    fn resize_conserves_postings() {
        let mut c = sample_cluster();
        let total_before: u64 = c.postings_per_node().iter().sum();
        c.resize(4).unwrap();
        let total_after: u64 = c.postings_per_node().iter().sum();
        assert_eq!(total_before, total_after);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn single_node_cluster_works() {
        let mut c = ClusterIndex::new(GeodabConfig::default(), 1, 1).unwrap();
        c.insert(TrajId::new(0), &eastward(40, 0.0));
        let hits = c.search(&eastward(40, 0.0), &SearchOptions::default());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].distance, 0.0);
    }

    #[test]
    fn invalid_configuration_errors() {
        assert!(ClusterIndex::new(GeodabConfig::default(), 0, 10).is_err());
        assert!(ClusterIndex::new(GeodabConfig::default(), 100, 0).is_err());
    }

    mod equivalence {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The sharded fan-out (per-shard heaps merged at the
            /// coordinator) returns exactly what a monolithic index over
            /// the same fingerprints would — including after removals,
            /// re-inserts (which recycle node-local interner slots) and a
            /// resize — for any workload and options.
            #[test]
            fn cluster_equals_monolithic_on_random_fingerprints(
                sets in proptest::collection::vec(
                    proptest::collection::vec(0u32..5_000, 0..30), 1..40),
                query in proptest::collection::vec(0u32..5_000, 0..30),
                nodes in 1usize..12,
                limit in 0usize..8,
                threshold_pm in 0u32..101,
                remove_stride in 2usize..5,
                resize_to in 0usize..12,
            ) {
                let config = GeodabConfig::default();
                let mut cluster = ClusterIndex::new(config, 10_000, nodes).unwrap();
                let mut mono = GeodabIndex::new(config);
                let insert = |cluster: &mut ClusterIndex,
                              mono: &mut GeodabIndex,
                              i: usize,
                              set: &[u32]| {
                    let fp = geodabs_core::Fingerprints::from_ordered(set.to_vec());
                    cluster.insert_fingerprints(TrajId::new(i as u32), fp.clone());
                    mono.insert_fingerprints(TrajId::new(i as u32), fp);
                };
                for (i, set) in sets.iter().enumerate() {
                    insert(&mut cluster, &mut mono, i, set);
                }
                // Remove a stride of ids from both, then re-insert every
                // other removed id with a shifted set — exercising posting
                // scrubs and dense-slot recycling on both sides.
                for i in (0..sets.len()).step_by(remove_stride) {
                    cluster.remove(TrajId::new(i as u32));
                    mono.remove(TrajId::new(i as u32));
                }
                for i in (0..sets.len()).step_by(remove_stride * 2) {
                    let shifted: Vec<u32> = sets[i].iter().map(|t| t + 1).collect();
                    insert(&mut cluster, &mut mono, i, &shifted);
                }
                if resize_to > 0 {
                    cluster.resize(resize_to).unwrap();
                }
                let query_fp = geodabs_core::Fingerprints::from_ordered(query);
                let mut options =
                    SearchOptions::default().max_distance(threshold_pm as f64 / 100.0);
                if limit > 0 {
                    options = options.limit(limit - 1);
                }
                prop_assert_eq!(
                    cluster.search_fingerprints(&query_fp, &options),
                    mono.search_fingerprints(&query_fp, &options)
                );
            }
        }
    }
}
