//! Sharded, distributed geodab index (Sections III-A4 and VI-E of the
//! paper, Figure 2 (c)).
//!
//! The geohash prefix of a geodab places it on the Z-order space-filling
//! curve; sharding slices that curve into contiguous ranges so that nearby
//! cells land on the same shard (**locality preserving** — queries touch
//! few shards), while shards map to nodes with a modulo (**locality
//! breaking** — load spreads evenly). The trade-off between the two is
//! exactly what Figure 16 evaluates with 100 vs 10 000 shards on 10 nodes.
//!
//! * [`ShardRouter`] — the two pure mapping functions
//!   `shard = ⌊geohash / 2^depth · s⌋` and `node = shard mod n`,
//! * [`ClusterIndex`] — a simulated cluster of per-node posting stores
//!   (roaring bitmaps over node-locally interned ids) with fan-out ranked
//!   queries: every contacted node scores its candidates into a bounded
//!   top-k heap on its own scoped thread and the coordinator merges the
//!   per-shard heaps into the exact global ranking,
//! * [`ShardNode`] — one node's slice of the index hosted standalone,
//!   the state a remote shard server boots from in the distributed
//!   deployment (its per-shard heaps merge exactly via [`merge_heaps`]),
//! * [`balance`] — balance statistics over shard/node assignments.
//!
//! # Examples
//!
//! ```
//! use geodabs_cluster::ShardRouter;
//!
//! let router = ShardRouter::new(16, 10_000, 10).expect("valid");
//! // A geodab's 16-bit prefix picks a contiguous shard of the Z-curve...
//! let shard = router.shard_of_cell(0x8000);
//! assert_eq!(shard, 5_000);
//! // ...and the shard is assigned to a node round-robin.
//! assert_eq!(router.node_of_shard(shard), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
mod cluster;
mod node;
mod router;
mod snapshot;

pub use cluster::{merge_heaps, ClusterIndex, QueryStats};
pub use node::ShardNode;
pub use router::{ClusterConfigError, ShardRouter};
