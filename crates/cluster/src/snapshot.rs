//! Cluster snapshots: the `GDAB` v2 implementation of
//! [`Persist`] for [`ClusterIndex`].
//!
//! A cluster snapshot is a **manifest plus per-node segments** in one
//! container (backend tag 3):
//!
//! ```text
//! CONF   depth u8, prefix u8, k u32, t u32, num_shards u64, num_nodes u32
//! IDST   roaring bitmap of every indexed TrajId (including trajectories
//!        too short to fingerprint, which no node stores)
//! FPRS   count u32, count × (id u32, len u32, len × geodab u32) — each
//!        trajectory's ordered fingerprints, stored once even when
//!        several nodes hold a replica
//! NODEi  one segment per node:
//!        capacity u32, live u32, live × (dense u32, id u32)
//!        terms u32, terms × (term u32, posting bitmap wire form)
//! ```
//!
//! Node segments are independent byte strings, so they are serialized
//! **and** deserialized concurrently via
//! [`geodabs_index::batch::parallel_map`] — a cold-starting shard server
//! materializes all of its nodes in parallel. Derived per-node state that
//! is cheap to recompute (shard load accounting, fingerprint replica
//! maps) is rebuilt from the router and the global fingerprint table on
//! load rather than stored.

use geodabs_core::Fingerprints;
use geodabs_index::batch::{self, parallel_map};
use geodabs_index::codec::{read_postings, read_sequences, write_postings, write_sequences};
use geodabs_index::engine::IdInterner;
use geodabs_index::store::{
    node_section_id, BackendKind, Cursor, Persist, SnapshotError, SnapshotReader, SnapshotWriter,
    MAX_NODE_SECTIONS, SEC_CONFIG, SEC_FINGERPRINTS, SEC_IDSET,
};
use geodabs_roaring::RoaringBitmap;
use geodabs_traj::TrajId;
use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::cluster::NodeStore;
use crate::{ClusterIndex, ShardRouter};

pub(crate) fn encode_node(node: &NodeStore) -> Vec<u8> {
    let live = node.interner.live_slots();
    let mut out = Vec::with_capacity(12 + 8 * live.len());
    out.extend_from_slice(&(node.interner.capacity() as u32).to_le_bytes());
    out.extend_from_slice(&(live.len() as u32).to_le_bytes());
    for &(dense, id) in &live {
        out.extend_from_slice(&dense.to_le_bytes());
        out.extend_from_slice(&id.raw().to_le_bytes());
    }
    let mut postings: Vec<(u32, &RoaringBitmap)> = node
        .postings
        .iter()
        .map(|(&term, list)| (term, list))
        .collect();
    postings.sort_unstable_by_key(|&(term, _)| term);
    write_postings(&mut out, &postings);
    out
}

pub(crate) fn decode_node(
    payload: &[u8],
    node_index: usize,
    router: &ShardRouter,
    global_fps: &HashMap<TrajId, Fingerprints>,
) -> Result<NodeStore, SnapshotError> {
    let mut cursor = Cursor::new(payload);
    let capacity = cursor.u32()?;
    let live_count = cursor.u32()? as usize;
    let mut live = Vec::with_capacity(live_count.min(cursor.remaining() / 8));
    for _ in 0..live_count {
        let dense = cursor.u32()?;
        let id = TrajId::new(cursor.u32()?);
        live.push((dense, id));
    }
    let interner = IdInterner::from_live_slots(capacity, &live).map_err(SnapshotError::Corrupt)?;
    let live_bitmap: RoaringBitmap = live.iter().map(|&(dense, _)| dense).collect();
    let mut fingerprints: HashMap<TrajId, Fingerprints> = HashMap::with_capacity(live.len());
    for &(_, id) in &live {
        let Some(fp) = global_fps.get(&id) else {
            return Err(SnapshotError::Corrupt(
                "node references unknown fingerprints",
            ));
        };
        fingerprints.insert(id, fp.clone());
    }

    let posting_lists = read_postings::<u32>(&mut cursor)?;
    cursor.expect_end()?;
    let mut postings: HashMap<u32, RoaringBitmap> = HashMap::with_capacity(posting_lists.len());
    let mut shard_load: HashMap<u64, u64> = HashMap::new();
    for (term, list) in posting_lists {
        if list.is_empty() {
            return Err(SnapshotError::Corrupt("empty posting list"));
        }
        // Count the live overlap without materializing the intersection:
        // every posting entry must be a live slot.
        if list.intersection_len(&live_bitmap) != list.len() {
            return Err(SnapshotError::Corrupt("posting references a vacant slot"));
        }
        let shard = router.shard_of_geodab(term);
        if router.node_of_shard(shard) != node_index {
            return Err(SnapshotError::Corrupt("posting routed to the wrong node"));
        }
        *shard_load.entry(shard).or_insert(0) += list.len();
        // Ascending-term order (checked by the reader) rules out
        // duplicates, so this insert never replaces.
        postings.insert(term, list);
    }
    Ok(NodeStore {
        postings,
        interner,
        fingerprints,
        shard_load,
    })
}

impl Persist for ClusterIndex {
    fn to_snapshot(&self) -> Vec<u8> {
        let mut writer = SnapshotWriter::new(BackendKind::Cluster);

        let cfg = self.fingerprinter.config();
        let mut conf = Vec::with_capacity(22);
        conf.push(cfg.normalization_depth());
        conf.push(cfg.prefix_bits());
        conf.extend_from_slice(&(cfg.k() as u32).to_le_bytes());
        conf.extend_from_slice(&(cfg.t() as u32).to_le_bytes());
        conf.extend_from_slice(&self.router.num_shards().to_le_bytes());
        conf.extend_from_slice(&(self.router.num_nodes() as u32).to_le_bytes());
        writer.section(SEC_CONFIG, conf);

        let ids: RoaringBitmap = self.indexed.iter().map(|id| id.raw()).collect();
        let mut idset = Vec::with_capacity(ids.serialized_size());
        ids.serialize_into(&mut idset);
        writer.section(SEC_IDSET, idset);

        // Each replica of a trajectory's fingerprints is identical, so
        // store the ordered sequence once, keyed by id.
        let unique: BTreeMap<TrajId, &Fingerprints> = self
            .nodes
            .iter()
            .flat_map(|node| node.fingerprints.iter().map(|(&id, fp)| (id, fp)))
            .collect();
        let records: Vec<(TrajId, &[u32])> = unique
            .into_iter()
            .map(|(id, fp)| (id, fp.ordered()))
            .collect();
        let mut fprs = Vec::new();
        write_sequences(&mut fprs, &records);
        writer.section(SEC_FINGERPRINTS, fprs);

        // Per-node segments are independent: serialize them concurrently.
        let segments = parallel_map(&self.nodes, batch::default_threads(), encode_node);
        for (i, segment) in segments.into_iter().enumerate() {
            writer.section(node_section_id(i), segment);
        }
        writer.finish()
    }

    fn from_snapshot(data: &[u8]) -> Result<ClusterIndex, SnapshotError> {
        let reader = SnapshotReader::parse(data)?;
        reader.expect_backend(BackendKind::Cluster)?;

        let mut conf = Cursor::new(reader.section(SEC_CONFIG)?);
        let depth = conf.u8()?;
        let prefix = conf.u8()?;
        let k = conf.u32()? as usize;
        let t = conf.u32()? as usize;
        let num_shards = conf.u64()?;
        let num_nodes = conf.u32()? as usize;
        conf.expect_end()?;
        let config = geodabs_core::GeodabConfig::new(depth, k, t, prefix)
            .map_err(SnapshotError::InvalidConfig)?;
        if num_nodes == 0 || num_nodes > MAX_NODE_SECTIONS {
            return Err(SnapshotError::Corrupt("node count out of range"));
        }
        let router = ShardRouter::new(config.prefix_bits(), num_shards, num_nodes)
            .map_err(|_| SnapshotError::Corrupt("invalid router configuration"))?;

        let mut idset = Cursor::new(reader.section(SEC_IDSET)?);
        let indexed: BTreeSet<TrajId> = idset.bitmap()?.iter().map(TrajId::new).collect();
        idset.expect_end()?;

        let mut global_fps: HashMap<TrajId, Fingerprints> = HashMap::new();
        for (id, ordered) in read_sequences::<u32>(reader.section(SEC_FINGERPRINTS)?)? {
            if !indexed.contains(&id) {
                return Err(SnapshotError::Corrupt("fingerprints for an unindexed id"));
            }
            global_fps.insert(id, Fingerprints::from_ordered(ordered));
        }

        let mut segments: Vec<(usize, &[u8])> = Vec::with_capacity(num_nodes);
        for i in 0..num_nodes {
            segments.push((i, reader.section(node_section_id(i))?));
        }
        // Node segments are independent: materialize them concurrently.
        let nodes: Vec<Result<NodeStore, SnapshotError>> = parallel_map(
            &segments,
            batch::default_threads(),
            |&(node_index, payload)| decode_node(payload, node_index, &router, &global_fps),
        );
        let nodes: Vec<NodeStore> = nodes.into_iter().collect::<Result<_, _>>()?;

        Ok(ClusterIndex {
            fingerprinter: geodabs_core::Fingerprinter::new(config),
            router,
            nodes,
            indexed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodabs_core::GeodabConfig;
    use geodabs_geo::Point;
    use geodabs_index::SearchOptions;
    use geodabs_traj::Trajectory;

    fn eastward(n: usize, offset_m: f64) -> Trajectory {
        let start = Point::new(51.5074, -0.1278).unwrap();
        (0..n)
            .map(|i| start.destination(90.0, offset_m + i as f64 * 90.0))
            .collect()
    }

    fn sample_cluster() -> ClusterIndex {
        let mut c = ClusterIndex::new(GeodabConfig::default(), 10_000, 7).unwrap();
        c.insert(TrajId::new(0), &eastward(40, 0.0));
        c.insert(TrajId::new(1), &eastward(40, 0.0).reversed());
        c.insert(TrajId::new(2), &eastward(40, 20_000.0));
        c.insert(TrajId::new(9), &eastward(2, 0.0)); // too short to fingerprint
        c
    }

    #[test]
    fn roundtrip_preserves_results_and_placement() {
        let original = sample_cluster();
        let restored = ClusterIndex::from_snapshot(&original.to_snapshot()).expect("roundtrip");
        assert_eq!(restored.len(), original.len());
        assert_eq!(restored.postings_per_node(), original.postings_per_node());
        assert_eq!(
            restored.trajectories_per_node(),
            original.trajectories_per_node()
        );
        assert_eq!(restored.active_shards(), original.active_shards());
        assert_eq!(
            restored.ids().collect::<Vec<_>>(),
            original.ids().collect::<Vec<_>>()
        );
        for query in [
            eastward(40, 0.0),
            eastward(40, 0.0).reversed(),
            eastward(40, 1_000.0),
        ] {
            let (hits_r, stats_r) = restored.search_with_stats(&query, &SearchOptions::default());
            let (hits_o, stats_o) = original.search_with_stats(&query, &SearchOptions::default());
            assert_eq!(hits_r, hits_o);
            assert_eq!(stats_r, stats_o);
        }
    }

    #[test]
    fn restored_cluster_remains_fully_mutable() {
        let original = sample_cluster();
        let mut restored = ClusterIndex::from_snapshot(&original.to_snapshot()).unwrap();
        // Removing, re-inserting and resizing all work on restored state.
        assert!(restored.remove(TrajId::new(1)));
        restored.insert(TrajId::new(42), &eastward(50, 500.0));
        restored.resize(3).unwrap();
        let hits = restored.search(&eastward(50, 500.0), &SearchOptions::default().limit(1));
        assert_eq!(hits[0].id, TrajId::new(42));
    }

    #[test]
    fn snapshot_is_deterministic() {
        let c = sample_cluster();
        assert_eq!(c.to_snapshot(), c.to_snapshot());
        // And stable across a round trip.
        let restored = ClusterIndex::from_snapshot(&c.to_snapshot()).unwrap();
        assert_eq!(restored.to_snapshot(), c.to_snapshot());
    }

    #[test]
    fn empty_cluster_roundtrips() {
        let c = ClusterIndex::new(GeodabConfig::default(), 100, 5).unwrap();
        let restored = ClusterIndex::from_snapshot(&c.to_snapshot()).unwrap();
        assert_eq!(restored.len(), 0);
        assert_eq!(restored.postings_per_node(), vec![0; 5]);
        assert_eq!(restored.router().num_shards(), 100);
    }

    #[test]
    fn wrong_backend_and_garbage_are_rejected() {
        assert!(matches!(
            ClusterIndex::from_snapshot(b"garbage"),
            Err(SnapshotError::BadMagic)
        ));
        let mut geodab_like = SnapshotWriter::new(BackendKind::Geodab);
        geodab_like.section(SEC_CONFIG, vec![36, 16, 6, 0, 0, 0, 12, 0, 0, 0]);
        assert!(matches!(
            ClusterIndex::from_snapshot(&geodab_like.finish()),
            Err(SnapshotError::WrongBackend { .. })
        ));
    }

    #[test]
    fn missing_node_segment_is_rejected() {
        let bytes = sample_cluster().to_snapshot();
        let reader = SnapshotReader::parse(&bytes).unwrap();
        // Rebuild the container without the last node segment.
        let mut writer = SnapshotWriter::new(BackendKind::Cluster);
        for &(id, payload) in reader.sections() {
            if id != node_section_id(6) {
                writer.section(id, payload.to_vec());
            }
        }
        assert!(matches!(
            ClusterIndex::from_snapshot(&writer.finish()),
            Err(SnapshotError::MissingSection(_))
        ));
    }
}
