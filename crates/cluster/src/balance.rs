//! Load-balance accounting for sharded indexes (Figure 16 of the paper).
//!
//! Given a histogram of trajectories per geohash cell (e.g. the world
//! activity model of `geodabs_gen::world`), these functions apply the
//! two-step sharding strategy — Z-order range partition to shards, modulo
//! to nodes — and report how evenly the load spreads. The paper's finding:
//! 100 shards on 10 nodes leave the load lopsided; 10 000 shards balance
//! it.

use crate::ShardRouter;

/// Sums a per-cell load histogram into per-node loads under the given
/// router. `cells` pairs each `cell` (raw geohash bits at the router's
/// prefix depth) with its load (e.g. trajectory count).
pub fn node_loads(router: &ShardRouter, cells: &[(u64, u64)]) -> Vec<u64> {
    let mut loads = vec![0u64; router.num_nodes()];
    for &(cell, count) in cells {
        loads[router.node_of_shard(router.shard_of_cell(cell))] += count;
    }
    loads
}

/// Sums a per-cell load histogram into per-shard loads.
pub fn shard_loads(router: &ShardRouter, cells: &[(u64, u64)]) -> Vec<u64> {
    let mut loads = vec![0u64; router.num_shards() as usize];
    for &(cell, count) in cells {
        loads[router.shard_of_cell(cell) as usize] += count;
    }
    loads
}

/// The imbalance ratio `max / mean` of a load vector; `1.0` is perfectly
/// balanced, larger is worse. Total, for any input — empty and all-zero
/// vectors report `0.0`, and the sum accumulates in `f64` so extreme
/// loads can neither overflow nor produce NaN/∞.
pub fn imbalance(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let total: f64 = loads.iter().map(|&l| l as f64).sum();
    if total == 0.0 {
        return 0.0;
    }
    let mean = total / loads.len() as f64;
    *loads.iter().max().expect("non-empty") as f64 / mean
}

/// Coefficient of variation (σ/μ) of a load vector; `0.0` is perfectly
/// balanced. Total, for any input — empty and all-zero vectors report
/// `0.0`, and all accumulation happens in `f64` so extreme loads can
/// neither overflow nor produce NaN/∞.
pub fn coefficient_of_variation(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let mean = loads.iter().map(|&l| l as f64).sum::<f64>() / loads.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = loads
        .iter()
        .map(|&l| {
            let d = l as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / loads.len() as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_loads_sum_to_total() {
        let r = ShardRouter::new(16, 100, 10).unwrap();
        let cells: Vec<(u64, u64)> = (0..1000u64).map(|c| (c * 7 % (1 << 16), 3)).collect();
        let loads = node_loads(&r, &cells);
        assert_eq!(loads.len(), 10);
        assert_eq!(loads.iter().sum::<u64>(), 3_000);
    }

    #[test]
    fn shard_loads_sum_to_total() {
        let r = ShardRouter::new(16, 100, 10).unwrap();
        let cells = vec![(0u64, 5u64), (40_000, 7), (65_535, 1)];
        let loads = shard_loads(&r, &cells);
        assert_eq!(loads.len(), 100);
        assert_eq!(loads.iter().sum::<u64>(), 13);
    }

    #[test]
    fn imbalance_of_uniform_load_is_one() {
        assert_eq!(imbalance(&[5, 5, 5, 5]), 1.0);
        assert_eq!(coefficient_of_variation(&[5, 5, 5, 5]), 0.0);
    }

    #[test]
    fn imbalance_of_skewed_load_is_large() {
        let i = imbalance(&[100, 0, 0, 0]);
        assert_eq!(i, 4.0);
        assert!(coefficient_of_variation(&[100, 0, 0, 0]) > 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[0, 0]), 0.0);
        assert_eq!(imbalance(&[0]), 0.0);
        assert_eq!(coefficient_of_variation(&[]), 0.0);
        assert_eq!(coefficient_of_variation(&[0, 0]), 0.0);
        assert_eq!(coefficient_of_variation(&[0]), 0.0);
    }

    #[test]
    fn single_element_vectors_are_perfectly_balanced() {
        assert_eq!(imbalance(&[7]), 1.0);
        assert_eq!(coefficient_of_variation(&[7]), 0.0);
    }

    #[test]
    fn extreme_loads_do_not_overflow_or_produce_nan() {
        // A u64 accumulator would overflow (and panic in debug builds) on
        // these; the f64 path must stay finite and sensible.
        let huge = [u64::MAX, u64::MAX, u64::MAX, u64::MAX];
        let i = imbalance(&huge);
        assert!(i.is_finite() && (i - 1.0).abs() < 1e-9, "imbalance {i}");
        let cv = coefficient_of_variation(&huge);
        assert!(cv.is_finite() && cv.abs() < 1e-9, "cv {cv}");

        let skewed = [u64::MAX, 0, 0, 0];
        let i = imbalance(&skewed);
        assert!(i.is_finite() && (i - 4.0).abs() < 1e-9, "imbalance {i}");
        let cv = coefficient_of_variation(&skewed);
        assert!(cv.is_finite() && cv > 1.0, "cv {cv}");
    }

    #[test]
    fn statistics_are_total_and_finite_for_arbitrary_vectors() {
        // A coarse sweep standing in for a property test: no input may
        // panic or return NaN/∞, and the invariants imbalance ≥ 1 (when
        // load exists) and cv ≥ 0 always hold.
        let samples: Vec<Vec<u64>> = vec![
            vec![],
            vec![0],
            vec![1],
            vec![0, u64::MAX],
            vec![1; 1000],
            (0..100).map(|i| i * i).collect(),
            vec![u64::MAX / 2, u64::MAX / 2, u64::MAX],
        ];
        for loads in &samples {
            let i = imbalance(loads);
            let cv = coefficient_of_variation(loads);
            assert!(i.is_finite() && !i.is_nan(), "{loads:?} → imbalance {i}");
            assert!(cv.is_finite() && !cv.is_nan(), "{loads:?} → cv {cv}");
            assert!(cv >= 0.0, "{loads:?} → cv {cv}");
            if loads.iter().any(|&l| l > 0) {
                assert!(i >= 1.0 - 1e-12, "{loads:?} → imbalance {i}");
            } else {
                assert_eq!(i, 0.0);
            }
        }
    }

    #[test]
    fn more_shards_balance_a_hotspot() {
        // One hot region of consecutive cells. With shards == nodes the
        // hotspot lands on few nodes; with many shards the modulo spreads
        // it across all of them — the Figure 16 effect.
        let cells: Vec<(u64, u64)> = (30_000u64..30_200).map(|c| (c, 100)).collect();
        let coarse = ShardRouter::new(16, 10, 10).unwrap();
        let fine = ShardRouter::new(16, 10_000, 10).unwrap();
        let coarse_imb = imbalance(&node_loads(&coarse, &cells));
        let fine_imb = imbalance(&node_loads(&fine, &cells));
        assert!(
            fine_imb < coarse_imb,
            "fine {fine_imb:.2} should beat coarse {coarse_imb:.2}"
        );
        assert!(fine_imb < 1.5, "fine sharding should be near-balanced");
    }
}
