//! The sharded cluster must behave exactly like a monolithic index:
//! distribution is an implementation detail, not a semantic change
//! (Section VI-E of the paper).

use geodabs::cluster::balance::{imbalance, node_loads};
use geodabs::gen::dataset::{Dataset, DatasetConfig};
use geodabs::gen::world::{WorldActivity, WorldConfig};
use geodabs::prelude::*;
use geodabs::roadnet::generators::{grid_network, GridConfig};

fn dataset() -> Dataset {
    let net = grid_network(&GridConfig::default(), 42);
    Dataset::generate(
        &net,
        &DatasetConfig {
            routes: 8,
            per_direction: 3,
            queries: 6,
            ..DatasetConfig::default()
        },
        5,
    )
    .expect("routable network")
}

#[test]
fn cluster_results_equal_monolithic_results() {
    let ds = dataset();
    let config = GeodabConfig::default();
    let mut mono = GeodabIndex::new(config);
    let mut cluster = ClusterIndex::new(config, 10_000, 10).expect("valid cluster");
    for r in ds.records() {
        mono.insert(r.id, &r.trajectory);
        cluster.insert(r.id, &r.trajectory);
    }
    for q in ds.queries() {
        for options in [
            SearchOptions::default(),
            SearchOptions::default().limit(3),
            SearchOptions::default().max_distance(0.5),
        ] {
            let mono_hits = mono.search(&q.trajectory, &options);
            let cluster_hits = cluster.search(&q.trajectory, &options);
            assert_eq!(mono_hits, cluster_hits, "options {options:?}");
        }
    }
}

#[test]
fn cluster_size_is_invariant_to_shard_count() {
    let ds = dataset();
    let config = GeodabConfig::default();
    for (shards, nodes) in [(1u64, 1usize), (100, 10), (10_000, 10), (50_000, 16)] {
        let mut cluster = ClusterIndex::new(config, shards, nodes).expect("valid cluster");
        for r in ds.records() {
            cluster.insert(r.id, &r.trajectory);
        }
        assert_eq!(cluster.len(), ds.records().len());
        let q = &ds.queries()[0];
        let hits = cluster.search(&q.trajectory, &SearchOptions::default());
        assert!(!hits.is_empty(), "{shards} shards x {nodes} nodes");
    }
}

#[test]
fn city_scale_queries_touch_one_node() {
    // The whole evaluation region fits a single 16-bit cell, so the
    // locality-preserving sharding must route every query to one shard.
    let ds = dataset();
    let mut cluster =
        ClusterIndex::new(GeodabConfig::default(), 10_000, 10).expect("valid cluster");
    for r in ds.records() {
        cluster.insert(r.id, &r.trajectory);
    }
    for q in ds.queries() {
        let (_, stats) = cluster.search_with_stats(&q.trajectory, &SearchOptions::default());
        assert!(
            stats.shards_contacted <= 2,
            "query touched {} shards",
            stats.shards_contacted
        );
        assert!(stats.nodes_contacted <= 2);
    }
}

#[test]
fn world_scale_balance_improves_with_shard_count() {
    let world = WorldActivity::generate(
        &WorldConfig {
            cities: 500,
            trajectories: 100_000,
            ..WorldConfig::default()
        },
        9,
    );
    let cells = world.sorted_counts();
    let coarse = node_loads(&ShardRouter::new(16, 100, 10).expect("valid"), &cells);
    let fine = node_loads(&ShardRouter::new(16, 10_000, 10).expect("valid"), &cells);
    assert_eq!(coarse.iter().sum::<u64>(), world.total());
    assert_eq!(fine.iter().sum::<u64>(), world.total());
    assert!(
        imbalance(&fine) <= imbalance(&coarse),
        "10k shards ({:.2}) should balance at least as well as 100 ({:.2})",
        imbalance(&fine),
        imbalance(&coarse)
    );
}

#[test]
fn postings_and_trajectory_accounting_are_consistent() {
    let ds = dataset();
    let mut cluster =
        ClusterIndex::new(GeodabConfig::default(), 10_000, 10).expect("valid cluster");
    for r in ds.records() {
        cluster.insert(r.id, &r.trajectory);
    }
    let postings = cluster.postings_per_node();
    let trajs = cluster.trajectories_per_node();
    assert_eq!(postings.len(), 10);
    assert_eq!(trajs.len(), 10);
    // Every posting entry references a trajectory stored on that node.
    for (p, t) in postings.iter().zip(&trajs) {
        assert_eq!(*p == 0, *t == 0, "postings {p} vs trajectories {t}");
    }
    // A trajectory may be referenced from several nodes, but at least one.
    assert!(trajs.iter().sum::<usize>() >= cluster.len());
}
