//! Persistence and positional retrieval, end to end on generated data:
//! an index must survive an encode/decode roundtrip byte for byte, and
//! the positional index must support the sub-sequence searches of
//! Section III-A1 on realistic trajectories.

use geodabs::gen::dataset::{Dataset, DatasetConfig};
use geodabs::index::{codec, MatchLevel, PositionalIndex};
use geodabs::prelude::*;
use geodabs::roadnet::generators::{grid_network, GridConfig};

fn dataset() -> Dataset {
    let net = grid_network(&GridConfig::default(), 42);
    Dataset::generate(
        &net,
        &DatasetConfig {
            routes: 6,
            per_direction: 3,
            queries: 4,
            ..DatasetConfig::default()
        },
        23,
    )
    .expect("routable network")
}

#[test]
fn persisted_index_answers_every_query_identically() {
    let ds = dataset();
    let mut index = GeodabIndex::new(GeodabConfig::default());
    for r in ds.records() {
        index.insert(r.id, &r.trajectory);
    }
    let bytes = codec::encode(&index);
    let restored = codec::decode(&bytes).expect("roundtrip");
    assert_eq!(restored.len(), index.len());
    for q in ds.queries() {
        assert_eq!(
            index.search(&q.trajectory, &SearchOptions::default()),
            restored.search(&q.trajectory, &SearchOptions::default())
        );
    }
    // And the roundtrip is stable: encode(decode(x)) == x.
    assert_eq!(codec::encode(&restored), bytes);
}

#[test]
fn persisted_index_survives_disk() {
    let ds = dataset();
    let mut index = GeodabIndex::new(GeodabConfig::default());
    for r in ds.records() {
        index.insert(r.id, &r.trajectory);
    }
    let dir = std::env::temp_dir().join("geodabs-int-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("persist.gdab");
    std::fs::write(&path, codec::encode(&index)).expect("write");
    let bytes = std::fs::read(&path).expect("read");
    let restored = codec::decode(&bytes).expect("decode");
    assert_eq!(restored.len(), ds.records().len());
}

#[test]
fn positional_index_supports_boolean_retrieval_on_dataset() {
    let ds = dataset();
    let mut index = PositionalIndex::new(GeodabConfig::default());
    for r in ds.records() {
        index.insert(r.id, &r.trajectory);
    }
    assert_eq!(index.len(), ds.records().len());
    for q in ds.queries() {
        let terms = index.fingerprint_query(&q.trajectory);
        if terms.is_empty() {
            continue;
        }
        // OR retrieval must surface the relevant siblings near the top.
        let or_hits = index.query_or(&terms);
        assert!(!or_hits.is_empty());
        let relevant = ds.relevant_ids(q);
        let top: Vec<_> = or_hits
            .iter()
            .take(relevant.len())
            .map(|&(id, _)| id)
            .collect();
        let found = top.iter().filter(|id| relevant.contains(id)).count();
        assert!(
            found * 2 >= relevant.len(),
            "only {found} of {} relevant in the top ranks",
            relevant.len()
        );
    }
}

#[test]
fn subtrajectory_search_locates_route_segments() {
    let ds = dataset();
    let mut index = PositionalIndex::new(GeodabConfig::default());
    for r in ds.records() {
        index.insert(r.id, &r.trajectory);
    }
    // Use the middle third of a stored trajectory as the query.
    let rec = &ds.records()[0];
    let third = rec.trajectory.len() / 3;
    let segment: Trajectory = rec.trajectory.motif(third, third);
    let (level, hits) = index.search_subtrajectory(&segment);
    assert_ne!(
        level,
        MatchLevel::None,
        "segment of a stored trajectory must match"
    );
    assert!(
        hits.contains(&rec.id),
        "level {level:?} found {hits:?}, expected {}",
        rec.id
    );
}
