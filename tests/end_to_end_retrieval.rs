//! End-to-end retrieval: synthetic road network -> dense noisy dataset ->
//! geodab index -> ranked queries, asserting the quality properties the
//! paper's Figures 12 and 13 report.

use geodabs::gen::dataset::{Dataset, DatasetConfig};
use geodabs::index::eval::{auc, precision_at, ranked_ids, recall_at};
use geodabs::prelude::*;
use geodabs::roadnet::generators::{grid_network, GridConfig};
use geodabs::roadnet::RoadNetwork;

fn setup() -> (RoadNetwork, Dataset) {
    let net = grid_network(&GridConfig::default(), 42);
    let ds = Dataset::generate(
        &net,
        &DatasetConfig {
            routes: 12,
            per_direction: 4,
            queries: 8,
            ..DatasetConfig::default()
        },
        3,
    )
    .expect("grid network is routable");
    (net, ds)
}

fn build_indexes(ds: &Dataset) -> (GeodabIndex, GeohashIndex) {
    let mut geodab = GeodabIndex::new(GeodabConfig::default());
    let mut geohash = GeohashIndex::new(36);
    for r in ds.records() {
        geodab.insert(r.id, &r.trajectory);
        geohash.insert(r.id, &r.trajectory);
    }
    (geodab, geohash)
}

#[test]
fn geodab_retrieval_is_precise_at_the_top() {
    let (_, ds) = setup();
    let (geodab, _) = build_indexes(&ds);
    let mut p_at_r = 0.0;
    for q in ds.queries() {
        let relevant = ds.relevant_ids(q);
        let hits = geodab.search(&q.trajectory, &SearchOptions::default());
        p_at_r += precision_at(&ranked_ids(&hits), &relevant, relevant.len());
    }
    let mean = p_at_r / ds.queries().len() as f64;
    assert!(mean > 0.8, "mean R-precision only {mean:.2}");
}

#[test]
fn geodab_retrieval_has_high_recall() {
    let (_, ds) = setup();
    let (geodab, _) = build_indexes(&ds);
    let mut recall = 0.0;
    for q in ds.queries() {
        let relevant = ds.relevant_ids(q);
        let hits = geodab.search(&q.trajectory, &SearchOptions::default());
        recall += recall_at(&ranked_ids(&hits), &relevant, usize::MAX);
    }
    let mean = recall / ds.queries().len() as f64;
    assert!(mean > 0.8, "mean recall only {mean:.2}");
}

#[test]
fn geodabs_discriminate_direction_geohash_does_not() {
    let (_, ds) = setup();
    let (geodab, geohash) = build_indexes(&ds);
    // For each query, where do the same-route *opposite-direction*
    // records rank relative to same-direction ones?
    let mut geodab_wins = 0usize;
    let mut geohash_confusions = 0usize;
    let mut checked = 0usize;
    for q in ds.queries() {
        let forward = ds.relevant_ids(q);
        let both = ds.same_route_ids(q);
        let reverse: Vec<_> = both.difference(&forward).collect();
        if reverse.is_empty() {
            continue;
        }
        checked += 1;
        let dab_hits = geodab.search(&q.trajectory, &SearchOptions::default());
        let hash_hits = geohash.search(&q.trajectory, &SearchOptions::default());
        // In the geodab ranking, every forward record that appears must
        // rank above every reverse record that appears.
        let dab_rank = |id| dab_hits.iter().position(|h| &h.id == id);
        let worst_forward = forward.iter().filter_map(&dab_rank).max();
        let best_reverse = reverse.iter().filter_map(|id| dab_rank(id)).min();
        match (worst_forward, best_reverse) {
            (Some(wf), Some(br)) if wf < br => geodab_wins += 1,
            (Some(_), None) => geodab_wins += 1, // reverses not even candidates
            _ => {}
        }
        // The geohash ranking mixes directions: the best reverse record
        // scores (nearly) as well as the best forward one.
        let hash_dist = |id| hash_hits.iter().find(|h| &h.id == id).map(|h| h.distance);
        let best_fwd = forward
            .iter()
            .filter_map(hash_dist)
            .fold(f64::INFINITY, f64::min);
        let best_rev = reverse
            .iter()
            .copied()
            .filter_map(hash_dist)
            .fold(f64::INFINITY, f64::min);
        if (best_rev - best_fwd).abs() < 0.15 {
            geohash_confusions += 1;
        }
    }
    assert!(checked >= 4, "not enough queries with reverse records");
    assert!(
        geodab_wins as f64 >= 0.75 * checked as f64,
        "geodabs separated direction on only {geodab_wins}/{checked} queries"
    );
    assert!(
        geohash_confusions as f64 >= 0.75 * checked as f64,
        "geohash separated direction on {} of {checked} queries — it should not",
        checked - geohash_confusions
    );
}

#[test]
fn both_indexes_have_high_auc_geodab_sharper_at_top() {
    let (_, ds) = setup();
    let (geodab, geohash) = build_indexes(&ds);
    let corpus = ds.records().len();
    let mut dab_auc = 0.0;
    let mut hash_auc = 0.0;
    let mut dab_p1 = 0.0;
    let mut hash_p1 = 0.0;
    for q in ds.queries() {
        let relevant = ds.relevant_ids(q);
        let dab = ranked_ids(&geodab.search(&q.trajectory, &SearchOptions::default()));
        let hash = ranked_ids(&geohash.search(&q.trajectory, &SearchOptions::default()));
        dab_auc += auc(&dab, &relevant, corpus);
        hash_auc += auc(&hash, &relevant, corpus);
        dab_p1 += precision_at(&dab, &relevant, 1);
        hash_p1 += precision_at(&hash, &relevant, 1);
    }
    let n = ds.queries().len() as f64;
    // Both are high-sensitivity indexes (paper: AUC ~0.999 for both).
    assert!(dab_auc / n > 0.9, "geodab AUC {:.3}", dab_auc / n);
    assert!(hash_auc / n > 0.9, "geohash AUC {:.3}", hash_auc / n);
    // But geodabs put a relevant result first more reliably.
    assert!(
        dab_p1 >= hash_p1,
        "geodab P@1 {dab_p1} < geohash P@1 {hash_p1}"
    );
}

#[test]
fn distance_threshold_bounds_the_result_set() {
    let (_, ds) = setup();
    let (geodab, _) = build_indexes(&ds);
    let q = &ds.queries()[0];
    let all = geodab.search(&q.trajectory, &SearchOptions::default());
    for dmax in [0.2, 0.5, 0.8] {
        let hits = geodab.search(&q.trajectory, &SearchOptions::default().max_distance(dmax));
        assert!(hits.iter().all(|h| h.distance <= dmax));
        assert!(hits.len() <= all.len());
        // The thresholded list is a prefix of the full ranking.
        assert_eq!(
            hits.as_slice(),
            &all[..hits.len()],
            "Δmax must cut the ranking, not reorder it"
        );
    }
}

#[test]
fn results_are_sorted_by_distance() {
    let (_, ds) = setup();
    let (geodab, geohash) = build_indexes(&ds);
    for q in ds.queries() {
        for hits in [
            geodab.search(&q.trajectory, &SearchOptions::default()),
            geohash.search(&q.trajectory, &SearchOptions::default()),
        ] {
            assert!(hits.windows(2).all(|w| w[0].distance <= w[1].distance));
        }
    }
}
