//! Shared conformance suite for the [`TrajectoryIndex`] trait: every
//! backend — the geodab index, the geohash baseline and the sharded
//! cluster — must agree on the insert / remove / re-insert / batch / ids
//! life-cycle, so index-generic code (evaluation, fan-out, future
//! backends) can rely on one contract.

use geodabs::prelude::*;

fn start() -> Point {
    Point::new(51.5074, -0.1278).expect("valid point")
}

/// A ~3.5 km eastward path shifted `offset_m` along its bearing.
fn eastward(n: usize, offset_m: f64) -> Trajectory {
    (0..n)
        .map(|i| start().destination(90.0, offset_m + i as f64 * 90.0))
        .collect()
}

/// The workload every backend is exercised with.
fn sample_items() -> Vec<(TrajId, Trajectory)> {
    vec![
        (TrajId::new(0), eastward(40, 0.0)),
        (TrajId::new(1), eastward(40, 0.0).reversed()),
        (TrajId::new(2), eastward(40, 20_000.0)),
        (TrajId::new(3), eastward(50, 1_000.0)),
    ]
}

/// Runs the whole conformance suite against a fresh index.
fn conformance<I: TrajectoryIndex>(mut index: I) {
    let items = sample_items();

    // Empty index invariants.
    assert_eq!(index.len(), 0);
    assert!(index.is_empty());
    assert_eq!(index.ids().count(), 0);
    assert!(!index.remove(TrajId::new(0)), "nothing to remove yet");

    // Batch insert (default impl or backend override) populates ids.
    index.insert_batch(items.iter().map(|(id, t)| (*id, t)));
    assert_eq!(index.len(), items.len());
    let mut ids: Vec<TrajId> = index.ids().collect();
    ids.sort_unstable();
    assert_eq!(ids, items.iter().map(|(id, _)| *id).collect::<Vec<_>>());

    // The query's twin ranks first while it is indexed.
    let query = eastward(40, 0.0);
    let hits = index.search(&query, &SearchOptions::default());
    assert_eq!(hits[0].id, TrajId::new(0));
    assert_eq!(hits[0].distance, 0.0);

    // Remove the twin: it disappears from results and ids; removing it
    // again reports absence.
    assert!(index.remove(TrajId::new(0)));
    assert!(!index.remove(TrajId::new(0)));
    assert_eq!(index.len(), items.len() - 1);
    assert!(index.ids().all(|id| id != TrajId::new(0)));
    let hits = index.search(&query, &SearchOptions::default());
    assert!(
        hits.iter().all(|h| h.id != TrajId::new(0)),
        "removed id must not be retrieved"
    );

    // Re-insert restores exactly the original behaviour.
    index.insert(TrajId::new(0), &eastward(40, 0.0));
    assert_eq!(index.len(), items.len());
    let hits = index.search(&query, &SearchOptions::default());
    assert_eq!(hits[0].id, TrajId::new(0));
    assert_eq!(hits[0].distance, 0.0);

    // Re-inserting an id with different contents replaces, not duplicates.
    index.insert(TrajId::new(3), &eastward(40, 40_000.0));
    assert_eq!(index.len(), items.len());
    let far_hits = index.search(&eastward(40, 40_000.0), &SearchOptions::default());
    assert!(far_hits.iter().any(|h| h.id == TrajId::new(3)));
    let near_hits = index.search(&query, &SearchOptions::default());
    assert!(
        near_hits.iter().all(|h| h.id != TrajId::new(3)),
        "old contents of a re-inserted id must be gone"
    );

    // Options still combine on every backend.
    let capped = index.search(&query, &SearchOptions::default().max_distance(0.9).limit(1));
    assert_eq!(capped.len(), 1);
    assert_eq!(capped[0].id, TrajId::new(0));

    // Draining the index empties it.
    let all: Vec<TrajId> = index.ids().collect();
    for id in all {
        assert!(index.remove(id));
    }
    assert!(index.is_empty());
    assert!(index.search(&query, &SearchOptions::default()).is_empty());
}

#[test]
fn geodab_index_conforms() {
    conformance(GeodabIndex::new(GeodabConfig::default()));
}

#[test]
fn geohash_index_conforms() {
    conformance(GeohashIndex::new(36));
}

#[test]
fn cluster_index_conforms() {
    conformance(ClusterIndex::new(GeodabConfig::default(), 10_000, 10).expect("valid topology"));
}

#[test]
fn remove_prunes_geodab_postings() {
    // Removal must scrub posting lists, not just the id table: after
    // removing the only trajectory, the term dictionary is empty again.
    let mut index = GeodabIndex::new(GeodabConfig::default());
    index.insert(TrajId::new(7), &eastward(40, 0.0));
    assert!(index.term_count() > 0);
    assert!(index.remove(TrajId::new(7)));
    assert_eq!(index.term_count(), 0);
}

#[test]
fn remove_prunes_geohash_postings() {
    let mut index = GeohashIndex::new(36);
    index.insert(TrajId::new(7), &eastward(40, 0.0));
    assert!(index.term_count() > 0);
    assert!(index.remove(TrajId::new(7)));
    assert_eq!(index.term_count(), 0);
}

#[test]
fn remove_prunes_cluster_postings() {
    let mut cluster = ClusterIndex::new(GeodabConfig::default(), 10_000, 10).expect("valid");
    cluster.insert(TrajId::new(7), &eastward(40, 0.0));
    assert!(cluster.postings_per_node().iter().sum::<u64>() > 0);
    assert!(cluster.remove(TrajId::new(7)));
    assert_eq!(cluster.postings_per_node().iter().sum::<u64>(), 0);
    assert_eq!(cluster.active_shards(), 0);
    assert_eq!(cluster.trajectories_per_node().iter().sum::<usize>(), 0);
}

#[test]
fn cluster_results_match_monolithic_after_removals() {
    // The cluster stays consistent with a monolithic index through a
    // remove/re-insert churn.
    let mut mono = GeodabIndex::new(GeodabConfig::default());
    let mut cluster = ClusterIndex::new(GeodabConfig::default(), 10_000, 10).expect("valid");
    for (id, t) in sample_items() {
        mono.insert(id, &t);
        cluster.insert(id, &t);
    }
    mono.remove(TrajId::new(1));
    cluster.remove(TrajId::new(1));
    mono.insert(TrajId::new(9), &eastward(45, 500.0));
    cluster.insert(TrajId::new(9), &eastward(45, 500.0));
    for query in [
        eastward(40, 0.0),
        eastward(45, 500.0),
        eastward(40, 20_000.0),
    ] {
        assert_eq!(
            mono.search(&query, &SearchOptions::default()),
            cluster.search(&query, &SearchOptions::default())
        );
    }
}

#[test]
fn cluster_batch_insert_resolves_duplicate_ids_like_sequential_insert() {
    // A batch repeating an id must deterministically keep the *last*
    // occurrence — same as repeated inserts — whatever the thread count.
    let near = eastward(40, 0.0);
    let far = eastward(40, 40_000.0);
    let items = [
        (TrajId::new(1), &near),
        (TrajId::new(1), &far),
        (TrajId::new(2), &near),
    ];
    for threads in [1usize, 2, 4] {
        let mut cluster = ClusterIndex::new(GeodabConfig::default(), 10_000, 10).expect("valid");
        cluster.insert_batch_threads(&items, threads);
        assert_eq!(cluster.len(), 2);
        let far_hits = cluster.search(&far, &SearchOptions::default());
        assert!(
            far_hits
                .iter()
                .any(|h| h.id == TrajId::new(1) && h.distance == 0.0),
            "{threads} threads: last occurrence of the duplicate id must win"
        );
        let near_hits = cluster.search(&near, &SearchOptions::default());
        assert!(
            near_hits.iter().all(|h| h.id != TrajId::new(1)),
            "{threads} threads: first occurrence must have been replaced"
        );
    }
}

#[test]
fn batch_insert_default_equals_sequential() {
    let mut batched = GeodabIndex::new(GeodabConfig::default());
    batched.insert_batch(sample_items().iter().map(|(id, t)| (*id, t)));
    let mut sequential = GeodabIndex::new(GeodabConfig::default());
    for (id, t) in sample_items() {
        sequential.insert(id, &t);
    }
    let query = eastward(40, 0.0);
    assert_eq!(batched.len(), sequential.len());
    assert_eq!(
        batched.search(&query, &SearchOptions::default()),
        sequential.search(&query, &SearchOptions::default())
    );
}

/// Batch ingest ≡ a sequential insert loop, and batch search ≡ a
/// sequential query loop, on any backend, at several explicit thread
/// counts. Runs against all three index families below.
fn batch_paths_match_sequential<I, F>(make: F)
where
    I: TrajectoryIndex + Sync,
    F: Fn() -> I,
{
    let items = sample_items();
    let refs: Vec<(TrajId, &Trajectory)> = items.iter().map(|(id, t)| (*id, t)).collect();
    let queries: Vec<Trajectory> = vec![
        eastward(40, 0.0),
        eastward(40, 0.0).reversed(),
        eastward(50, 1_000.0),
        eastward(40, 20_000.0),
        eastward(3, 0.0), // too short to fingerprint
    ];
    let mut sequential = make();
    for (id, t) in &items {
        sequential.insert(*id, t);
    }
    for options in [
        SearchOptions::default(),
        SearchOptions::default().limit(2),
        SearchOptions::default().max_distance(0.5).limit(1),
    ] {
        let expected: Vec<_> = queries
            .iter()
            .map(|q| sequential.search(q, &options))
            .collect();
        let mut batched = make();
        batched.insert_batch(refs.iter().copied());
        assert_eq!(batched.len(), sequential.len());
        for threads in [1usize, 2, 4, 8] {
            assert_eq!(
                batched.search_batch_threads(&queries, &options, threads),
                expected,
                "search_batch at {threads} threads, options {options:?}"
            );
        }
        assert_eq!(batched.search_batch(&queries, &options), expected);
    }
}

#[test]
fn geodab_batch_paths_match_sequential() {
    batch_paths_match_sequential(|| GeodabIndex::new(GeodabConfig::default()));
}

#[test]
fn geohash_batch_paths_match_sequential() {
    batch_paths_match_sequential(|| GeohashIndex::new(36));
}

#[test]
fn cluster_batch_paths_match_sequential() {
    batch_paths_match_sequential(|| {
        ClusterIndex::new(GeodabConfig::default(), 10_000, 10).expect("valid topology")
    });
}

#[test]
fn explicit_thread_batch_insert_equals_sequential_on_every_backend() {
    let items = sample_items();
    let refs: Vec<(TrajId, &Trajectory)> = items.iter().map(|(id, t)| (*id, t)).collect();
    let query = eastward(40, 0.0);

    let mut sequential = GeodabIndex::new(GeodabConfig::default());
    for (id, t) in &items {
        sequential.insert(*id, t);
    }
    for threads in [1usize, 2, 4, 8] {
        let mut batched = GeodabIndex::new(GeodabConfig::default());
        batched.insert_batch_threads(&refs, threads);
        assert_eq!(batched.len(), sequential.len());
        assert_eq!(batched.term_count(), sequential.term_count());
        assert_eq!(
            batched.search(&query, &SearchOptions::default()),
            sequential.search(&query, &SearchOptions::default()),
            "geodab at {threads} threads"
        );
    }

    let mut sequential = GeohashIndex::new(36);
    for (id, t) in &items {
        sequential.insert(*id, t);
    }
    for threads in [1usize, 2, 4, 8] {
        let mut batched = GeohashIndex::new(36);
        batched.insert_batch_threads(&refs, threads);
        assert_eq!(batched.len(), sequential.len());
        assert_eq!(batched.term_count(), sequential.term_count());
        assert_eq!(
            batched.search(&query, &SearchOptions::default()),
            sequential.search(&query, &SearchOptions::default()),
            "geohash at {threads} threads"
        );
    }

    let mut sequential = ClusterIndex::new(GeodabConfig::default(), 10_000, 10).expect("valid");
    for (id, t) in &items {
        sequential.insert(*id, t);
    }
    for threads in [1usize, 2, 4, 8] {
        let mut batched = ClusterIndex::new(GeodabConfig::default(), 10_000, 10).expect("valid");
        batched.insert_batch_threads(&refs, threads);
        assert_eq!(batched.len(), sequential.len());
        assert_eq!(batched.postings_per_node(), sequential.postings_per_node());
        assert_eq!(
            batched.search(&query, &SearchOptions::default()),
            sequential.search(&query, &SearchOptions::default()),
            "cluster at {threads} threads"
        );
    }
}
