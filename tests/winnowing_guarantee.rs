//! The winnowing guarantees, end to end on realistic data: common
//! sub-trajectories of at least `t` moves share a fingerprint; matches
//! shorter than `k` moves are treated as noise (Section IV-A).

use geodabs::prelude::*;
use geodabs::traj::{GeohashNormalizer, Normalizer};

fn start() -> Point {
    Point::new(51.5074, -0.1278).expect("valid point")
}

/// A clean path through a given cell sequence: `moves` eastward cell
/// transitions starting `offset_cells` in, one point per ~85 m move.
fn cell_path(offset_cells: usize, moves: usize) -> Trajectory {
    (0..=moves)
        .map(|i| start().destination(90.0, (offset_cells + i) as f64 * 95.0))
        .collect()
}

/// Fingerprint without smoothing (clean input, exact cell sequences).
fn clean_fingerprint(t: &Trajectory) -> Fingerprints {
    let fp = Fingerprinter::new(GeodabConfig::default());
    let plain = GeohashNormalizer::new(36).expect("valid depth");
    fp.fingerprint(&plain.normalize(t))
}

#[test]
fn shared_run_of_t_moves_guarantees_a_common_fingerprint() {
    let config = GeodabConfig::default();
    // Two paths overlapping in exactly t = 12 moves: a guaranteed match.
    let a = cell_path(0, 30);
    let b = cell_path(30 - config.t(), 30);
    let fa = clean_fingerprint(&a);
    let fb = clean_fingerprint(&b);
    assert!(
        fa.set().intersection_len(fb.set()) >= 1,
        "winnowing guarantee violated for a t-move overlap"
    );
}

#[test]
fn overlap_shorter_than_k_is_noise() {
    let config = GeodabConfig::default();
    // Overlap of k - 1 = 5 moves: below the noise threshold, the overlap
    // spans no complete k-gram, so no fingerprint can match.
    let a = cell_path(0, 30);
    let b = cell_path(30 - (config.k() - 1), 60);
    let fa = clean_fingerprint(&a);
    let fb = clean_fingerprint(&b);
    assert_eq!(
        fa.set().intersection_len(fb.set()),
        0,
        "sub-k overlap must not produce a match"
    );
}

#[test]
fn overlap_between_k_and_t_may_or_may_not_match() {
    // Between the bounds the detection is probabilistic; we only check
    // that the machinery does not crash and distances stay in range.
    let a = cell_path(0, 30);
    for overlap in 6..12 {
        let b = cell_path(30 - overlap, 30);
        let fa = clean_fingerprint(&a);
        let fb = clean_fingerprint(&b);
        let d = fa.jaccard_distance(&fb);
        assert!((0.0..=1.0).contains(&d));
    }
}

#[test]
fn longer_overlaps_mean_smaller_distances() {
    let a = cell_path(0, 60);
    let mut last = 1.1;
    for overlap in [12usize, 24, 36, 48, 60] {
        let b = cell_path(60 - overlap, 60);
        let d = clean_fingerprint(&a).jaccard_distance(&clean_fingerprint(&b));
        assert!(
            d <= last + 0.15,
            "distance should broadly decrease with overlap: {d} after {last}"
        );
        last = d;
    }
    // Full overlap is an exact match.
    assert_eq!(
        clean_fingerprint(&a).jaccard_distance(&clean_fingerprint(&cell_path(0, 60))),
        0.0
    );
}

#[test]
fn fingerprint_density_matches_theory_on_long_paths() {
    // Winnowing selects ~2/(w+1) of the k-gram stream.
    let config = GeodabConfig::default();
    let t = cell_path(0, 400);
    let f = clean_fingerprint(&t);
    let candidates = (401 - config.k() + 1) as f64;
    let density = f.len() as f64 / candidates;
    let expected = 2.0 / (config.window() as f64 + 1.0);
    assert!(
        (density - expected).abs() < 0.1,
        "density {density:.3} vs theoretical {expected:.3}"
    );
}

#[test]
fn direction_flip_destroys_all_matches() {
    let a = cell_path(0, 40);
    let fa = clean_fingerprint(&a);
    let fr = clean_fingerprint(&a.reversed());
    assert!(
        fa.set().is_disjoint(fr.set()),
        "reverse path must not match"
    );
}
