//! Normalization end to end (Section V): both normalization methods must
//! make noisy samplings of the same route converge, and better
//! normalization must translate into better retrieval.

use geodabs::gen::dataset::{Dataset, DatasetConfig};
use geodabs::index::eval::{precision_at, ranked_ids};
use geodabs::prelude::*;
use geodabs::roadnet::generators::{grid_network, GridConfig};
use geodabs::roadnet::matching::MatchConfig;
use geodabs::roadnet::{RoadNetwork, SpatialIndex};
use geodabs::traj::{GeohashNormalizer, IdentityNormalizer, MapMatchNormalizer, Normalizer};

fn setup() -> (RoadNetwork, Dataset) {
    let net = grid_network(&GridConfig::default(), 42);
    let ds = Dataset::generate(
        &net,
        &DatasetConfig {
            routes: 6,
            per_direction: 3,
            queries: 4,
            ..DatasetConfig::default()
        },
        17,
    )
    .expect("routable network");
    (net, ds)
}

#[test]
fn sibling_distance_shrinks_with_normalization_quality() {
    let (net, ds) = setup();
    let spatial = SpatialIndex::build(&net, 300.0);
    let fingerprinter = Fingerprinter::new(GeodabConfig::default());
    let identity = IdentityNormalizer;
    let robust = GeohashNormalizer::robust(36).expect("valid depth");
    let map_match = MapMatchNormalizer::new(&net, &spatial, MatchConfig::default());

    let q = &ds.queries()[0];
    let sibling = ds
        .records()
        .iter()
        .find(|r| ds.relevant_ids(q).contains(&r.id))
        .expect("queries have siblings");

    let dist = |n: &dyn Normalizer| {
        fingerprinter
            .fingerprint_with(n, &q.trajectory)
            .jaccard_distance(&fingerprinter.fingerprint_with(n, &sibling.trajectory))
    };
    let d_identity = dist(&identity);
    let d_robust = dist(&robust);
    let d_matched = dist(&map_match);
    // Raw noisy points share essentially nothing.
    assert!(d_identity > 0.95, "identity {d_identity}");
    // Grid normalization recovers a solid overlap.
    assert!(
        d_robust < d_identity,
        "robust {d_robust} vs identity {d_identity}"
    );
    // Map matching recovers the exact node path: near-perfect.
    assert!(d_matched < 0.35, "map-matched distance {d_matched}");
}

#[test]
fn map_match_normalization_beats_noise() {
    let (net, ds) = setup();
    let spatial = SpatialIndex::build(&net, 300.0);
    let map_match = MapMatchNormalizer::new(&net, &spatial, MatchConfig::default());
    // Two independent noisy samplings of the same route direction must
    // normalize to (nearly) the same node sequence.
    let q = &ds.queries()[0];
    let relevant = ds.relevant_ids(q);
    let mut siblings = ds.records().iter().filter(|r| relevant.contains(&r.id));
    let s1 = siblings.next().expect("sibling 1");
    let s2 = siblings.next().expect("sibling 2");
    let n1 = map_match.normalize(&s1.trajectory);
    let n2 = map_match.normalize(&s2.trajectory);
    assert!(!n1.is_empty() && !n2.is_empty());
    let common = n1
        .points()
        .iter()
        .filter(|p| n2.points().contains(p))
        .count();
    let frac = common as f64 / n1.len().max(n2.len()) as f64;
    assert!(frac > 0.8, "only {frac:.2} of matched nodes agree");
}

#[test]
fn retrieval_with_normalization_beats_identity() {
    let (_, ds) = setup();
    // Index A: the default pipeline (robust geohash normalization).
    let mut normalized_index = GeodabIndex::new(GeodabConfig::default());
    for r in ds.records() {
        normalized_index.insert(r.id, &r.trajectory);
    }
    let mut norm_score = 0.0;
    for q in ds.queries() {
        let relevant = ds.relevant_ids(q);
        let hits = normalized_index.search(&q.trajectory, &SearchOptions::default());
        norm_score += precision_at(&ranked_ids(&hits), &relevant, relevant.len());
    }
    // Index B: fingerprint raw points (identity normalization) — the
    // Figure 5 (a) control. Raw noisy coordinates never produce real
    // k-gram matches; any overlap is an accidental collision of the
    // 16-bit hash suffix, so similarities stay negligible.
    let fingerprinter = Fingerprinter::new(GeodabConfig::default());
    let mut raw_sim_sum = 0.0;
    let mut pairs = 0usize;
    for q in ds.queries() {
        let qf = fingerprinter.fingerprint(&q.trajectory);
        for r in ds.records() {
            let rf = fingerprinter.fingerprint(&r.trajectory);
            raw_sim_sum += qf.jaccard(&rf);
            pairs += 1;
        }
    }
    let norm_mean = norm_score / ds.queries().len() as f64;
    assert!(norm_mean > 0.7, "normalized R-precision {norm_mean:.2}");
    let raw_mean = raw_sim_sum / pairs as f64;
    assert!(
        raw_mean < 0.02,
        "raw fingerprints should share almost nothing, got mean jaccard {raw_mean:.4}"
    );
}

#[test]
fn map_matched_index_outperforms_grid_index() {
    // Build two geodab indexes over the same dataset: one with the default
    // robust grid normalization, one with map matching (Section V-B), and
    // compare retrieval quality on the same queries.
    let (net, ds) = setup();
    let spatial = SpatialIndex::build(&net, 300.0);
    // Interpolate the matched path at the fingerprinting cell scale so a
    // single mismatched node stays a local perturbation.
    let matcher =
        MapMatchNormalizer::new(&net, &spatial, MatchConfig::default()).with_interpolation(85.0);

    let mut grid_index = GeodabIndex::new(GeodabConfig::default());
    let mut matched_index = GeodabIndex::new(GeodabConfig::default());
    for r in ds.records() {
        grid_index.insert(r.id, &r.trajectory);
        matched_index.insert_with_normalizer(&matcher, r.id, &r.trajectory);
    }
    let mut grid_score = 0.0;
    let mut matched_score = 0.0;
    for q in ds.queries() {
        let relevant = ds.relevant_ids(q);
        let grid_hits = grid_index.search(&q.trajectory, &SearchOptions::default());
        grid_score += precision_at(&ranked_ids(&grid_hits), &relevant, relevant.len());
        let matched_hits = matched_index.search_with_normalizer(
            &matcher,
            &q.trajectory,
            &SearchOptions::default(),
        );
        matched_score += precision_at(&ranked_ids(&matched_hits), &relevant, relevant.len());
    }
    let n = ds.queries().len() as f64;
    assert!(
        matched_score / n >= grid_score / n - 0.05,
        "map matching ({:.2}) should not lose to the grid ({:.2})",
        matched_score / n,
        grid_score / n
    );
    assert!(
        matched_score / n > 0.8,
        "map-matched R-precision {:.2}",
        matched_score / n
    );
}

#[test]
fn deeper_grids_produce_longer_normalized_sequences() {
    let (_, ds) = setup();
    let t = &ds.records()[0].trajectory;
    let mut last_len = 0usize;
    for depth in [28u8, 32, 36, 40] {
        let n = GeohashNormalizer::new(depth)
            .expect("valid depth")
            .normalize(t);
        assert!(
            n.len() >= last_len,
            "depth {depth}: {} < previous {last_len}",
            n.len()
        );
        last_len = n.len();
    }
}
