//! Motif discovery end to end (Section VI-C): the fingerprint-based
//! method must locate the same shared segment the exact DFD-based BTM
//! baseline finds, at a fraction of the cost.

use geodabs::core::discover_motif;
use geodabs::distance::{btm, btm_naive, dfd};
use geodabs::prelude::*;

fn hub() -> Point {
    Point::new(51.5074, -0.1278).expect("valid point")
}

/// Dense path: `prefix` approach points from `bearing`, then `shared`
/// eastward points through the hub (15 m sampling).
fn commute(bearing: f64, prefix: usize, shared: usize) -> Trajectory {
    let mut pts: Vec<Point> = (1..=prefix)
        .rev()
        .map(|i| hub().destination(bearing, i as f64 * 15.0))
        .collect();
    pts.extend((0..shared).map(|i| hub().destination(90.0, i as f64 * 15.0)));
    Trajectory::new(pts)
}

#[test]
fn geodab_motif_finds_the_shared_segment() {
    let a = commute(225.0, 150, 360);
    let b = commute(315.0, 150, 360);
    let fp = Fingerprinter::default();
    let fa = fp.normalize_and_fingerprint(&a);
    let fb = fp.normalize_and_fingerprint(&b);
    let len = (fa.len().min(fb.len()) / 2).max(2);
    let m = discover_motif(&fa, &fb, len).expect("long enough");
    // The shared stretch gives a (near-)zero Jaccard distance motif.
    assert!(m.distance < 0.35, "motif distance {}", m.distance);
    // And it is much closer than the trajectories as wholes.
    assert!(m.distance < fa.jaccard_distance(&fb));
}

#[test]
fn btm_and_geodab_motifs_agree_on_location() {
    let a = commute(225.0, 150, 360);
    let b = commute(315.0, 150, 360);
    // Exact BTM on the raw points.
    let exact = btm(&a, &b, 200).expect("long enough");
    assert!(exact.distance < 5.0, "BTM distance {}", exact.distance);
    // Both motifs must start inside the shared stretch (which begins at
    // point 150 of each trajectory).
    assert!(exact.start_a >= 140, "BTM start_a {}", exact.start_a);
    assert!(exact.start_b >= 140, "BTM start_b {}", exact.start_b);
    // The geodab motif maps back to fingerprints of the shared stretch:
    // verified indirectly by its near-zero distance in the test above.
}

#[test]
fn btm_pruned_equals_naive_on_commutes() {
    let a = commute(225.0, 60, 120);
    let b = commute(315.0, 60, 120);
    for len in [20usize, 60, 100] {
        assert_eq!(btm(&a, &b, len), btm_naive(&a, &b, len), "len {len}");
    }
}

#[test]
fn motif_window_dfd_confirms_btm_result() {
    // Sanity: the DFD of the windows BTM returns matches its reported
    // distance.
    let a = commute(225.0, 60, 120);
    let b = commute(315.0, 60, 120);
    let m = btm(&a, &b, 50).expect("long enough");
    let wa = a.motif(m.start_a, m.len);
    let wb = b.motif(m.start_b, m.len);
    assert!((dfd(&wa, &wb) - m.distance).abs() < 1e-9);
}

#[test]
fn disjoint_trajectories_have_poor_motifs() {
    let a = commute(225.0, 100, 100);
    let far: Trajectory = (0..200)
        .map(|i| {
            hub()
                .destination(0.0, 30_000.0)
                .destination(90.0, i as f64 * 15.0)
        })
        .collect();
    let fp = Fingerprinter::default();
    let fa = fp.normalize_and_fingerprint(&a);
    let ff = fp.normalize_and_fingerprint(&far);
    if let Some(m) = discover_motif(&fa, &ff, 2) {
        assert_eq!(m.distance, 1.0, "no shared cell, distance must be 1");
    }
    let exact = btm(&a, &far, 50).expect("long enough");
    assert!(exact.distance > 20_000.0, "BTM distance {}", exact.distance);
}
