//! Integration coverage for the features that extend the paper: cluster
//! elasticity, region queries, trajectory simplification and the extra
//! distance measures — all exercised on generated workloads.

use geodabs::distance::{dfd, hausdorff, lcss_similarity};
use geodabs::gen::dataset::{Dataset, DatasetConfig};
use geodabs::prelude::*;
use geodabs::roadnet::generators::{grid_network, GridConfig};
use geodabs::traj::{moving_average, resample, simplify_rdp, GeohashNormalizer, Normalizer};

fn dataset() -> Dataset {
    let net = grid_network(&GridConfig::default(), 42);
    Dataset::generate(
        &net,
        &DatasetConfig {
            routes: 6,
            per_direction: 3,
            queries: 4,
            ..DatasetConfig::default()
        },
        29,
    )
    .expect("routable network")
}

#[test]
fn cluster_scales_out_and_in_without_changing_answers() {
    let ds = dataset();
    let items: Vec<(TrajId, _)> = ds.records().iter().map(|r| (r.id, &r.trajectory)).collect();
    let mut cluster = ClusterIndex::new(GeodabConfig::default(), 10_000, 4).expect("valid");
    cluster.insert_batch_threads(&items, 4);
    let before: Vec<_> = ds
        .queries()
        .iter()
        .map(|q| cluster.search(&q.trajectory, &SearchOptions::default()))
        .collect();
    // Scale out, then back in.
    for nodes in [16usize, 2, 4] {
        cluster.resize(nodes).expect("valid node count");
        for (q, expected) in ds.queries().iter().zip(&before) {
            assert_eq!(
                &cluster.search(&q.trajectory, &SearchOptions::default()),
                expected,
                "{nodes} nodes"
            );
        }
    }
}

#[test]
fn region_queries_find_trajectories_through_an_area() {
    let ds = dataset();
    let mut index = GeohashIndex::new(36);
    for r in ds.records() {
        index.insert(r.id, &r.trajectory);
    }
    // A box around the midpoint of the first route must retrieve every
    // trajectory of that route (both directions pass through it).
    let route = &ds.routes()[0];
    let mid = route.points()[route.points().len() / 2];
    let bb = BoundingBox::around(mid, 1_000.0, 1_000.0);
    let hits = index.search_region(&bb);
    let route_ids: Vec<TrajId> = ds
        .records()
        .iter()
        .filter(|r| r.route == 0)
        .map(|r| r.id)
        .collect();
    for id in &route_ids {
        assert!(hits.contains(id), "{id} should cross the midpoint box");
    }
}

#[test]
fn simplify_resample_preserves_normalized_cells() {
    // Compression pipeline: smooth away the GPS noise, simplify with a
    // sub-cell tolerance, store the few remaining vertices, and
    // re-densify before fingerprinting. The normalized cell sequence must
    // survive the roundtrip.
    let ds = dataset();
    let rec = &ds.records()[0];
    let smoothed = moving_average(&rec.trajectory, 9);
    let simplified = simplify_rdp(&smoothed, 25.0);
    assert!(
        simplified.len() * 3 < smoothed.len(),
        "rdp kept {} of {} points",
        simplified.len(),
        smoothed.len()
    );
    let restored = resample(&simplified, 15.0);
    let norm = GeohashNormalizer::new(36).expect("valid depth");
    let cells_of = |t: &Trajectory| {
        let n = norm.normalize(t);
        n.points().to_vec()
    };
    let a = cells_of(&smoothed);
    let b = cells_of(&restored);
    let shared = a.iter().filter(|p| b.contains(p)).count();
    assert!(
        shared * 10 >= a.len() * 7,
        "only {shared}/{} normalized points survive the roundtrip",
        a.len()
    );
}

#[test]
fn distance_measures_agree_on_the_obvious_cases() {
    let ds = dataset();
    let q = &ds.queries()[0];
    let sibling = ds
        .records()
        .iter()
        .find(|r| ds.relevant_ids(q).contains(&r.id))
        .expect("sibling exists");
    let other = ds
        .records()
        .iter()
        .find(|r| r.route != q.route)
        .expect("other route exists");
    // Every measure must rate the sibling closer than the other route.
    let d_sib_dfd = dfd(&q.trajectory, &sibling.trajectory);
    let d_oth_dfd = dfd(&q.trajectory, &other.trajectory);
    assert!(d_sib_dfd < d_oth_dfd);
    let d_sib_h = hausdorff(&q.trajectory, &sibling.trajectory);
    let d_oth_h = hausdorff(&q.trajectory, &other.trajectory);
    assert!(d_sib_h < d_oth_h);
    let s_sib = lcss_similarity(&q.trajectory, &sibling.trajectory, 60.0);
    let s_oth = lcss_similarity(&q.trajectory, &other.trajectory, 60.0);
    assert!(s_sib > s_oth);
    // And Hausdorff (set-based) lower-bounds DFD (order-aware).
    assert!(d_sib_h <= d_sib_dfd + 1e-9);
}
