//! Workspace-local stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the criterion API the workspace's benches use:
//! [`Criterion::bench_function`] with [`Bencher::iter`] /
//! [`Bencher::iter_batched`], the builder knobs `sample_size`,
//! `measurement_time` and `warm_up_time`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is a plain wall-clock loop that
//! reports the per-iteration median of the collected samples — adequate
//! for relative comparisons, with none of criterion's statistics.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver: collects samples and prints one line per benchmark.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Criterion {
        assert!(samples > 0, "sample size must be positive");
        self.sample_size = samples;
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    /// Runs `routine` under the given name and prints its median time.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: run the routine until the warm-up budget is spent, and
        // learn how long one pass takes.
        let warm_up_start = Instant::now();
        let mut per_pass = Duration::ZERO;
        let mut passes = 0u32;
        while warm_up_start.elapsed() < self.warm_up_time || passes == 0 {
            let mut b = Bencher::default();
            routine(&mut b);
            per_pass = b.elapsed.max(Duration::from_nanos(1));
            passes += 1;
        }
        let _ = passes;

        // Sampling: split the measurement budget across the samples.
        let budget = self.measurement_time / self.sample_size as u32;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let reps = (budget.as_nanos() / per_pass.as_nanos().max(1)).clamp(1, 1_000_000) as u32;
            let mut elapsed = Duration::ZERO;
            let mut iters = 0u64;
            for _ in 0..reps {
                let mut b = Bencher::default();
                routine(&mut b);
                elapsed += b.elapsed;
                iters += b.iters;
            }
            if iters > 0 {
                samples.push(elapsed.as_nanos() as f64 / iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(f64::NAN);
        println!(
            "bench {name:<40} {median:>14.1} ns/iter ({} samples)",
            samples.len()
        );
        self
    }
}

/// Times the inner loop of one benchmark pass.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

/// Batch sizing hint for [`Bencher::iter_batched`] (the stub treats all
/// variants identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        const ITERS: u64 = 16;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS;
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        const ITERS: u64 = 16;
        let inputs: Vec<I> = (0..ITERS).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS;
    }
}

/// Declares a group of benchmark functions, optionally with a shared
/// configuration, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
