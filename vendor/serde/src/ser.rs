//! Serialization half of the mini data model.

use std::fmt::Display;

/// Error raised by a [`Serializer`].
pub trait Error: Sized + std::error::Error {
    /// Creates a serializer-specific error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value that can be serialized into serde's data model.
pub trait Serialize {
    /// Feeds `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can receive values.
pub trait Serializer: Sized {
    /// Value produced by a successful serialization.
    type Ok;
    /// Error raised on failure.
    type Error: Error;
    /// Sub-serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Begins serializing a sequence of `len` elements (if known).
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
}

/// Incremental serializer for sequence elements.
pub trait SerializeSeq {
    /// Value produced by a successful serialization.
    type Ok;
    /// Error raised on failure.
    type Error: Error;

    /// Serializes one sequence element.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;

    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

macro_rules! impl_serialize_primitive {
    ($($ty:ty => $method:ident),* $(,)?) => {
        $(
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.$method(*self)
                }
            }
        )*
    };
}

impl_serialize_primitive! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}
