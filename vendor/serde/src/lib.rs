//! Workspace-local stand-in for the [`serde`](https://serde.rs) framework.
//!
//! The build environment of this repository has no access to crates.io, so
//! this crate provides the *subset* of serde's API that the workspace
//! actually uses: the four core traits (`Serialize`, `Serializer`,
//! `Deserialize`, `Deserializer`), the sequence-oriented parts of the
//! `ser`/`de` data model, and derive macros for plain structs. Swapping it
//! for the real serde is a one-line change in the workspace manifest; no
//! source edits are required.
//!
//! Design notes:
//!
//! * Derived impls model a struct as a **sequence of its fields in
//!   declaration order** — a compact, self-describing-enough encoding for
//!   the workspace's value types (points, configs, ids, bitmaps).
//! * Only the trait surface used by the workspace is provided. Formats can
//!   be layered on top by implementing [`Serializer`] / [`Deserializer`].

#![forbid(unsafe_code)]

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

// Derive macros live in the companion proc-macro crate; like the real
// serde, the trait name and the derive macro name coincide.
pub use serde_derive::{Deserialize, Serialize};
