//! Deserialization half of the mini data model.

use std::fmt::{self, Display};

/// Error raised by a [`Deserializer`].
pub trait Error: Sized + std::error::Error {
    /// Creates a deserializer-specific error from a message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A sequence ended before element `index` could be read (used by
    /// derived struct impls).
    fn missing_element(index: usize) -> Self {
        Self::custom(format_args!("sequence ended before element {index}"))
    }
}

/// A value that can be reconstructed from serde's data model.
pub trait Deserialize<'de>: Sized {
    /// Builds `Self` by driving the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A data format that can produce values.
pub trait Deserializer<'de>: Sized {
    /// Error raised on failure.
    type Error: Error;

    /// Deserializes a `bool` into the visitor.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a signed integer into the visitor.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an unsigned integer into the visitor.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a floating-point number into the visitor.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a string into the visitor.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a sequence into the visitor.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
}

/// Receives values from a [`Deserializer`].
pub trait Visitor<'de>: Sized {
    /// The value this visitor produces.
    type Value;

    /// Describes what this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    /// Visits a `bool`.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(Unexpected("a boolean", self)))
    }

    /// Visits a signed integer.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(Unexpected("a signed integer", self)))
    }

    /// Visits an unsigned integer.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(Unexpected("an unsigned integer", self)))
    }

    /// Visits a floating-point number.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(Unexpected("a floating-point number", self)))
    }

    /// Visits a borrowed string.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(Unexpected("a string", self)))
    }

    /// Visits an owned string (delegates to [`Visitor::visit_str`]).
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    /// Visits a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(<A::Error as Error>::custom(Unexpected("a sequence", self)))
    }
}

/// Display adapter pairing what a deserializer produced with what the
/// visitor expected.
struct Unexpected<'a, V>(&'a str, V);

impl<'de, V: Visitor<'de>> Display for Unexpected<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        struct Expecting<'x, W>(&'x W);
        impl<'de, W: Visitor<'de>> Display for Expecting<'_, W> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.0.expecting(f)
            }
        }
        write!(f, "unexpected {}, expected {}", self.0, Expecting(&self.1))
    }
}

/// Streaming access to the elements of a sequence.
pub trait SeqAccess<'de> {
    /// Error raised on failure.
    type Error: Error;

    /// Reads the next element, or `None` at the end of the sequence.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>;

    /// Number of remaining elements, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

macro_rules! impl_deserialize_int {
    ($($ty:ty => ($driver:ident, $visit:ident, $source:ty)),* $(,)?) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct PrimitiveVisitor;
                    impl<'de> Visitor<'de> for PrimitiveVisitor {
                        type Value = $ty;
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            f.write_str(stringify!($ty))
                        }
                        fn $visit<E: Error>(self, v: $source) -> Result<$ty, E> {
                            <$ty>::try_from(v).map_err(|_| {
                                E::custom(format_args!(
                                    "{v} is out of range for {}",
                                    stringify!($ty)
                                ))
                            })
                        }
                    }
                    deserializer.$driver(PrimitiveVisitor)
                }
            }
        )*
    };
}

impl_deserialize_int! {
    i8 => (deserialize_i64, visit_i64, i64),
    i16 => (deserialize_i64, visit_i64, i64),
    i32 => (deserialize_i64, visit_i64, i64),
    i64 => (deserialize_i64, visit_i64, i64),
    isize => (deserialize_i64, visit_i64, i64),
    u8 => (deserialize_u64, visit_u64, u64),
    u16 => (deserialize_u64, visit_u64, u64),
    u32 => (deserialize_u64, visit_u64, u64),
    u64 => (deserialize_u64, visit_u64, u64),
    usize => (deserialize_u64, visit_u64, u64),
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BoolVisitor;
        impl<'de> Visitor<'de> for BoolVisitor {
            type Value = bool;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("bool")
            }
            fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_bool(BoolVisitor)
    }
}

macro_rules! impl_deserialize_float {
    ($($ty:ty),* $(,)?) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct FloatVisitor;
                    impl<'de> Visitor<'de> for FloatVisitor {
                        type Value = $ty;
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            f.write_str(stringify!($ty))
                        }
                        fn visit_f64<E: Error>(self, v: f64) -> Result<$ty, E> {
                            Ok(v as $ty)
                        }
                        fn visit_i64<E: Error>(self, v: i64) -> Result<$ty, E> {
                            Ok(v as $ty)
                        }
                        fn visit_u64<E: Error>(self, v: u64) -> Result<$ty, E> {
                            Ok(v as $ty)
                        }
                    }
                    deserializer.deserialize_f64(FloatVisitor)
                }
            }
        )*
    };
}

impl_deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }

            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(std::marker::PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(VecVisitor(std::marker::PhantomData))
    }
}
