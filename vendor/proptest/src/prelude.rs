//! One-stop imports for property tests: `use proptest::prelude::*;`.

pub use crate::{
    any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
    ProptestConfig, Strategy, TestCaseError,
};
