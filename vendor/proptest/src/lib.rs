//! Workspace-local stand-in for the [`proptest`](https://docs.rs/proptest)
//! property-testing framework.
//!
//! Implements the subset the workspace's tests use: the [`proptest!`]
//! macro with `arg in strategy` bindings and an optional
//! `#![proptest_config(…)]` attribute, the `prop_assert*` macros, range
//! and tuple strategies, [`any`] for integer types and
//! [`collection::vec`]. Cases are generated deterministically (per test
//! name) so failures reproduce; there is **no shrinking** — the failing
//! inputs are printed as-is.
//!
//! The number of cases per property defaults to 64 and can be raised or
//! lowered with the `PROPTEST_CASES` environment variable, exactly like
//! the real crate.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{RngCore, SampleRange, SeedableRng};

pub mod collection;
pub mod prelude;

/// Runner configuration, selected with `#![proptest_config(…)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A failed or rejected property-test case (produced by the
/// `prop_assert*` / `prop_assume!` macros; aborts the current case, not
/// the process).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
    rejected: bool,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError {
            message,
            rejected: false,
        }
    }

    /// Rejects the current case (its inputs do not satisfy a
    /// `prop_assume!` precondition); the runner skips it.
    pub fn reject(message: String) -> TestCaseError {
        TestCaseError {
            message,
            rejected: true,
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The deterministic RNG driving generation.
pub type TestRng = StdRng;

/// Generates values of `Self::Value` from random bits.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    self.clone().sample_single(rng)
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    self.clone().sample_single(rng)
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),* $(,)?) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

/// Types with a canonical full-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy generating arbitrary values of this type.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitive types (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for AnyPrimitive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }

            impl Arbitrary for $ty {
                type Strategy = AnyPrimitive<$ty>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
        )*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

/// The canonical strategy for a type: `any::<u32>()` generates any `u32`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Drives one property: generates `config.cases` inputs and runs the body
/// on each, panicking with the offending inputs on the first failure.
/// Called by the [`proptest!`] macro expansion, not directly.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    // Per-test deterministic seed: failures reproduce without bookkeeping.
    let base = fnv1a(name.as_bytes());
    for i in 0..config.cases {
        let mut rng =
            TestRng::seed_from_u64(base ^ (u64::from(i)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let (inputs, outcome) = case(&mut rng);
        if let Err(e) = outcome {
            if e.rejected {
                continue;
            }
            panic!(
                "proptest `{name}` failed at case {i}/{}\n  inputs: {inputs}\n  {e}",
                config.cases
            );
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01B3);
    }
    hash
}

/// Defines property tests: `proptest! { #[test] fn p(x in 0u32..10) { … } }`.
///
/// Accepts an optional leading `#![proptest_config(expr)]`. Each argument
/// is bound by drawing from its strategy; the body may use the
/// `prop_assert*` macros to reject a case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::run_proptest(&__config, stringify!($name), |__rng| {
                    let mut __inputs = ::std::string::String::new();
                    $crate::__proptest_bind!(__rng, __inputs; $($args)*);
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    (__inputs, __outcome)
                });
            }
        )*
    };
}

/// Implementation detail of [`proptest!`]: binds one argument per step,
/// either `name in strategy` or `name: Type` (= `any::<Type>()`).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $inputs:ident;) => {};
    ($rng:ident, $inputs:ident; $arg:ident in $strategy:expr) => {
        $crate::__proptest_bind!($rng, $inputs; $arg in $strategy,);
    };
    ($rng:ident, $inputs:ident; $arg:ident in $strategy:expr, $($rest:tt)*) => {
        let $arg = $crate::Strategy::generate(&($strategy), $rng);
        ::std::fmt::Write::write_fmt(
            &mut $inputs,
            format_args!("{} = {:?}; ", stringify!($arg), &$arg),
        )
        .expect("writing to a String cannot fail");
        $crate::__proptest_bind!($rng, $inputs; $($rest)*);
    };
    ($rng:ident, $inputs:ident; $arg:ident : $ty:ty) => {
        $crate::__proptest_bind!($rng, $inputs; $arg in $crate::any::<$ty>(),);
    };
    ($rng:ident, $inputs:ident; $arg:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_bind!($rng, $inputs; $arg in $crate::any::<$ty>(), $($rest)*);
    };
}

/// Asserts a condition inside a property body, failing the case (with the
/// generated inputs) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption not met: {}",
                stringify!($cond)
            )));
        }
    };
}

/// Asserts equality inside a property body (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Asserts inequality inside a property body (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l != *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both are {:?})",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}
