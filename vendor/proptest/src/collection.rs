//! Collection strategies.

use std::ops::Range;

use crate::{Strategy, TestRng};
use rand::Rng;

/// Strategy generating `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.is_empty() {
            self.size.start
        } else {
            rng.random_range(self.size.clone())
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s of values from `element`, with a length in `size`:
/// `vec(any::<u32>(), 0..100)`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
