//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++ by
/// Blackman & Vigna, seeded through the reference SplitMix64 expansion.
///
/// Not cryptographically secure — it exists to drive synthetic data
/// generation and property tests reproducibly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.random_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "got {hits}");
    }
}
