//! Workspace-local stand-in for the [`rand`](https://docs.rs/rand) crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the rand 0.9 API the workspace uses: the [`Rng`] extension
//! trait (`random`, `random_range`, `random_bool`), [`SeedableRng`] with
//! `seed_from_u64`, and [`rngs::StdRng`] backed by xoshiro256++ (seeded via
//! SplitMix64, the reference expansion). All generators are deterministic
//! for a given seed, which is exactly what the synthetic-dataset and
//! property-test code relies on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type (`f64` samples
    /// uniformly from `[0, 1)`, integers from their full range).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range, e.g. `rng.random_range(0.0..360.0)`
    /// or `rng.random_range(1u32..=6)`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable by [`Rng::random`].
pub trait Standard: Sized {
    /// Samples one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add((rng.next_u64() % span) as $ty)
                }
            }

            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "cannot sample from empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // The range covers the whole 64-bit domain.
                        return rng.next_u64() as $ty;
                    }
                    lo.wrapping_add((rng.next_u64() % span) as $ty)
                }
            }
        )*
    };
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let unit = <$ty as Standard>::sample_standard(rng);
                    self.start + (self.end - self.start) * unit
                }
            }

            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "cannot sample from empty range");
                    // Scale a closed unit sample so `hi` itself is reachable.
                    let unit = <$ty as Standard>::sample_standard(rng) / (1.0 - <$ty>::EPSILON);
                    lo + (hi - lo) * unit.min(1.0)
                }
            }
        )*
    };
}

impl_sample_range_float!(f32, f64);
