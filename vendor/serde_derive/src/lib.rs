//! Derive macros for the workspace-local `serde` stand-in.
//!
//! Supports the struct shapes this workspace uses: unit structs, tuple
//! structs and named-field structs, all without generic parameters. The
//! generated impls encode a struct as a **sequence of its fields in
//! declaration order**, matching the mini data model in the `serde` crate
//! next door. Enums and generics are rejected with a compile error rather
//! than silently mis-handled.
//!
//! The parser below walks the raw `TokenStream` by hand because the usual
//! helper crates (`syn`, `quote`) are not available offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Shape of the struct a derive was applied to.
enum Fields {
    /// `struct Foo;`
    Unit,
    /// `struct Foo(A, B);` with the number of fields.
    Tuple(usize),
    /// `struct Foo { a: A, b: B }` with the field names in order.
    Named(Vec<String>),
}

struct StructInfo {
    name: String,
    fields: Fields,
}

/// Derives `serde::Serialize` for a plain struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let info = match parse_struct(input) {
        Ok(info) => info,
        Err(msg) => return compile_error(&msg),
    };
    let name = &info.name;
    let mut body = String::new();
    match &info.fields {
        Fields::Unit => {
            body.push_str(
                "let __seq = ::serde::Serializer::serialize_seq(__serializer, \
                 ::core::option::Option::Some(0usize))?;\n",
            );
            body.push_str("::serde::ser::SerializeSeq::end(__seq)\n");
        }
        Fields::Tuple(n) => {
            body.push_str(&format!(
                "let mut __seq = ::serde::Serializer::serialize_seq(__serializer, \
                 ::core::option::Option::Some({n}usize))?;\n"
            ));
            for i in 0..*n {
                body.push_str(&format!(
                    "::serde::ser::SerializeSeq::serialize_element(&mut __seq, &self.{i})?;\n"
                ));
            }
            body.push_str("::serde::ser::SerializeSeq::end(__seq)\n");
        }
        Fields::Named(names) => {
            body.push_str(&format!(
                "let mut __seq = ::serde::Serializer::serialize_seq(__serializer, \
                 ::core::option::Option::Some({}usize))?;\n",
                names.len()
            ));
            for field in names {
                body.push_str(&format!(
                    "::serde::ser::SerializeSeq::serialize_element(&mut __seq, &self.{field})?;\n"
                ));
            }
            body.push_str("::serde::ser::SerializeSeq::end(__seq)\n");
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\
             }}\n\
         }}\n"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for a plain struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let info = match parse_struct(input) {
        Ok(info) => info,
        Err(msg) => return compile_error(&msg),
    };
    let name = &info.name;
    let construct = match &info.fields {
        Fields::Unit => name.clone(),
        Fields::Tuple(n) => {
            let elems: Vec<String> = (0..*n).map(next_element_expr).collect();
            format!("{name}({})", elems.join(", "))
        }
        Fields::Named(names) => {
            let fields: Vec<String> = names
                .iter()
                .enumerate()
                .map(|(i, f)| format!("{f}: {}", next_element_expr(i)))
                .collect();
            format!("{name} {{ {} }}", fields.join(", "))
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>)\n\
                         -> ::core::fmt::Result {{\n\
                         __f.write_str(\"struct {name}\")\n\
                     }}\n\
                     fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                         -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                         let _ = &mut __seq;\n\
                         ::core::result::Result::Ok({construct})\n\
                     }}\n\
                 }}\n\
                 ::serde::Deserializer::deserialize_seq(__deserializer, __Visitor)\n\
             }}\n\
         }}\n"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

/// Expression reading sequence element `i` inside `visit_seq`.
fn next_element_expr(i: usize) -> String {
    format!(
        "match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
             ::core::option::Option::Some(__v) => __v,\n\
             ::core::option::Option::None => return ::core::result::Result::Err(\n\
                 <__A::Error as ::serde::de::Error>::missing_element({i}usize)),\n\
         }}"
    )
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal parses")
}

/// Parses `struct Name …` out of the derive input, skipping attributes and
/// visibility, and rejecting shapes the mini data model cannot represent.
fn parse_struct(input: TokenStream) -> Result<StructInfo, String> {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes and the visibility qualifier until `struct`.
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the bracketed group that follows.
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    _ => return Err("malformed attribute on derive input".into()),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // `pub(crate)` etc.: consume the optional restriction group.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" || id.to_string() == "union" => {
                return Err(format!(
                    "the offline serde stand-in derives only plain structs, found `{id}`"
                ));
            }
            Some(other) => return Err(format!("unexpected token `{other}` in derive input")),
            None => return Err("derive input ended before `struct`".into()),
        }
    }

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected a struct name".into()),
    };

    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "the offline serde stand-in cannot derive for generic struct `{name}`"
            ));
        }
    }

    let fields = match tokens.next() {
        None => Fields::Unit,
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream())?)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        Some(other) => return Err(format!("unexpected token `{other}` after struct name")),
    };

    Ok(StructInfo { name, fields })
}

/// Extracts field names, in order, from the body of a braced struct.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    'fields: loop {
        // Skip field attributes and visibility.
        let name = loop {
            match tokens.next() {
                None => break 'fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    _ => return Err("malformed field attribute".into()),
                },
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => return Err(format!("unexpected token `{other}` in struct body")),
            }
        };
        names.push(name);
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err("expected `:` after field name".into()),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        loop {
            match tokens.peek() {
                None => break 'fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                Some(_) => {}
            }
            tokens.next();
        }
    }
    Ok(names)
}

/// Counts the fields of a tuple struct body (top-level commas, ignoring
/// commas nested inside generic argument lists).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for token in stream {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                fields += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        fields += 1;
    }
    fields
}
