//! The workspace-level error type.

use std::error::Error as StdError;
use std::fmt;

use geodabs_cluster::ClusterConfigError;
use geodabs_core::GeodabError;
use geodabs_gen::csv::CsvError;
use geodabs_geo::GeoError;
use geodabs_index::store::SnapshotError;
use geodabs_roadnet::RoadNetError;
use geodabs_wal::WalError;

/// Unified error for the `geodabs` façade: every per-crate error converts
/// into it with `?`, so applications composing several subsystems can
/// return one type.
///
/// ```
/// use geodabs::prelude::*;
///
/// fn build(k: usize, t: usize) -> Result<GeodabIndex, geodabs::Error> {
///     let config = GeodabConfig::builder().k(k).t(t).build()?;
///     Ok(GeodabIndex::new(config))
/// }
///
/// assert!(build(6, 12).is_ok());
/// assert!(matches!(build(6, 3), Err(geodabs::Error::Geodab(_))));
/// ```
// Not `Clone`/`PartialEq`: the CSV variant carries an `std::io::Error`.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Invalid fingerprinting configuration (from `geodabs-core`).
    Geodab(GeodabError),
    /// Invalid geographic primitive (from `geodabs-geo`).
    Geo(GeoError),
    /// Road-network failure (from `geodabs-roadnet`).
    RoadNet(RoadNetError),
    /// Invalid cluster topology (from `geodabs-cluster`).
    Cluster(ClusterConfigError),
    /// Malformed or unreadable snapshot (from the `geodabs-index`
    /// persistence layer).
    Snapshot(SnapshotError),
    /// Malformed trajectory CSV (from `geodabs-gen`).
    Csv(CsvError),
    /// Unreadable or corrupt write-ahead log (from `geodabs-wal`).
    Wal(WalError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Geodab(e) => write!(f, "geodab configuration: {e}"),
            Error::Geo(e) => write!(f, "geographic primitive: {e}"),
            Error::RoadNet(e) => write!(f, "road network: {e}"),
            Error::Cluster(e) => write!(f, "cluster topology: {e}"),
            Error::Snapshot(e) => write!(f, "index snapshot: {e}"),
            Error::Csv(e) => write!(f, "trajectory csv: {e}"),
            Error::Wal(e) => write!(f, "write-ahead log: {e}"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Geodab(e) => Some(e),
            Error::Geo(e) => Some(e),
            Error::RoadNet(e) => Some(e),
            Error::Cluster(e) => Some(e),
            Error::Snapshot(e) => Some(e),
            Error::Csv(e) => Some(e),
            Error::Wal(e) => Some(e),
        }
    }
}

impl From<GeodabError> for Error {
    fn from(e: GeodabError) -> Error {
        Error::Geodab(e)
    }
}

impl From<GeoError> for Error {
    fn from(e: GeoError) -> Error {
        Error::Geo(e)
    }
}

impl From<RoadNetError> for Error {
    fn from(e: RoadNetError) -> Error {
        Error::RoadNet(e)
    }
}

impl From<ClusterConfigError> for Error {
    fn from(e: ClusterConfigError) -> Error {
        Error::Cluster(e)
    }
}

impl From<SnapshotError> for Error {
    fn from(e: SnapshotError) -> Error {
        Error::Snapshot(e)
    }
}

impl From<CsvError> for Error {
    fn from(e: CsvError) -> Error {
        Error::Csv(e)
    }
}

impl From<WalError> for Error {
    fn from(e: WalError) -> Error {
        Error::Wal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_static() {
        fn assert_err<E: StdError + Send + Sync + 'static>() {}
        assert_err::<Error>();
    }

    #[test]
    fn conversions_preserve_the_source() {
        let e: Error = GeodabError::InvalidLowerBound(1).into();
        assert!(matches!(e, Error::Geodab(_)));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("k=1"));

        let e: Error = GeoError::InvalidLatitude(91.0).into();
        assert!(matches!(e, Error::Geo(_)));
        assert!(e.to_string().contains("latitude"));
    }

    #[test]
    fn question_mark_converts_anywhere() {
        fn chained() -> Result<(), Error> {
            geodabs_core::GeodabConfig::builder().k(0).build()?;
            Ok(())
        }
        assert!(matches!(chained(), Err(Error::Geodab(_))));
    }
}
