//! **geodabs** — trajectory fingerprinting, indexing and sharded
//! similarity search at scale, reproducing *Chapuis & Garbinato,
//! "Geodabs: Trajectory Indexing Meets Fingerprinting at Scale", ICDCS
//! 2018*.
//!
//! This umbrella crate is the one-stop façade over the workspace: it
//! re-exports every subsystem under a short module name, surfaces the
//! everyday types through [`prelude`], and unifies the per-crate errors
//! into [`Error`]. Applications depend on this crate; the underlying
//! crates remain usable individually.
//!
//! # Quickstart
//!
//! ```
//! use geodabs::prelude::*;
//!
//! # fn main() -> Result<(), geodabs::Error> {
//! // Fingerprinting parameters, validated by the builder.
//! let config = GeodabConfig::builder().k(6).t(12).prefix_bits(16).build()?;
//!
//! // A straight 3 km path sampled every ~90 m, and a noisy copy of it.
//! let start = Point::new(51.5074, -0.1278)?;
//! let path: Trajectory = (0..40).map(|i| start.destination(90.0, i as f64 * 90.0)).collect();
//! let noisy: Trajectory = path.iter().map(|p| p.destination(45.0, 8.0)).collect();
//!
//! // Index forward and return directions, then run a ranked query.
//! let mut index = GeodabIndex::new(config);
//! index.insert(TrajId::new(0), &path);
//! index.insert(TrajId::new(1), &path.reversed());
//! let hits = index.search(&noisy, &SearchOptions::default().max_distance(0.9).limit(5));
//! assert_eq!(hits[0].id, TrajId::new(0)); // same direction ranks first
//! # Ok(())
//! # }
//! ```
//!
//! # Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `geodabs-core` | geodab fingerprints, winnowing, motifs |
//! | [`geo`] | `geodabs-geo` | points, haversine, geohash, Morton curve |
//! | [`traj`] | `geodabs-traj` | trajectories, normalization, simplification |
//! | [`distance`] | `geodabs-distance` | DTW / Fréchet / Hausdorff / LCSS baselines |
//! | [`index`] | `geodabs-index` | inverted indexes, top-k query engine, evaluation, persistence |
//! | [`cluster`] | `geodabs-cluster` | sharded distributed index simulation |
//! | [`roadnet`] | `geodabs-roadnet` | road networks, routing, map matching |
//! | [`roaring`] | `geodabs-roaring` | roaring bitmaps |
//! | [`gen`] | `geodabs-gen` | synthetic datasets and workloads |
//! | [`serve`] | `geodabs-serve` | network serving: wire protocol, server, load client |
//! | [`wal`] | `geodabs-wal` | write-ahead log: group commit, torn-tail recovery, rotation |
//!
//! Ranked retrieval — single-node or sharded — runs on the exact pruned
//! top-k engine of [`index::engine`]: roaring posting lists over interned
//! trajectory ids, term-at-a-time overlap counting (rarest term first,
//! with upper-bound pruning against the evolving top-k threshold) and
//! bounded result heaps, merged per shard by the cluster. See
//! `docs/ARCHITECTURE.md` for the full query-path walkthrough.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub use error::Error;

pub use geodabs_cluster as cluster;
pub use geodabs_core as core;
pub use geodabs_distance as distance;
pub use geodabs_gen as gen;
pub use geodabs_geo as geo;
pub use geodabs_index as index;
pub use geodabs_roadnet as roadnet;
pub use geodabs_roaring as roaring;
pub use geodabs_serve as serve;
pub use geodabs_traj as traj;
pub use geodabs_wal as wal;

pub mod prelude {
    //! The everyday types in one import: `use geodabs::prelude::*;`.
    //!
    //! Brings in the fingerprinting pipeline ([`Fingerprinter`],
    //! [`GeodabConfig`]), the geometric and trajectory primitives
    //! ([`Point`], [`Trajectory`], [`TrajId`]), both index families plus
    //! the [`TrajectoryIndex`] trait and its query types, the sharded
    //! [`ClusterIndex`], the [`Persist`] snapshot trait every backend
    //! implements, the bounded [`TopK`] collector, the serving layer
    //! ([`Server`], [`Client`], [`LoadClient`]), the durable
    //! write-ahead log ([`Wal`] and its [`SyncPolicy`]), and the
    //! workspace [`Error`].

    pub use geodabs_cluster::{ClusterIndex, QueryStats, ShardRouter};
    // `ServeBackend` stays out on purpose: its method names mirror
    // `TrajectoryIndex`, and importing both would make plain
    // `index.search(…)` calls ambiguous for every prelude user.
    pub use geodabs_core::{
        Fingerprinter, Fingerprints, GeodabConfig, GeodabConfigBuilder, GeodabError,
    };
    pub use geodabs_geo::{BoundingBox, GeoError, Geohash, Point};
    pub use geodabs_index::engine::TopK;
    pub use geodabs_index::store::{Persist, SnapshotError};
    pub use geodabs_index::{
        GeodabIndex, GeohashIndex, SearchOptions, SearchResult, TrajectoryIndex,
    };
    pub use geodabs_roaring::RoaringBitmap;
    pub use geodabs_serve::{
        Client, LoadClient, Server, ServerConfig, ServerConfigBuilder, ServerConfigError,
        ShardedIndex,
    };
    pub use geodabs_traj::{TrajId, Trajectory};
    pub use geodabs_wal::{SyncPolicy, Wal, WalOp};

    pub use crate::Error;
}
