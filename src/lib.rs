//! Umbrella crate for the geodabs workspace.
//!
//! This package exists to host the cross-crate integration tests under
//! `tests/` and the runnable examples under `examples/`. It re-exports the
//! workspace crates so examples and tests can use one coherent namespace.
//!
//! See the individual crates for the actual implementation:
//!
//! * [`geodabs`] — geodab fingerprinting (the paper's contribution)
//! * [`geodabs_geo`] — points, haversine, geohash, Morton curve
//! * [`geodabs_roaring`] — roaring bitmaps
//! * [`geodabs_roadnet`] — road networks, routing, map matching
//! * [`geodabs_traj`] — trajectories and normalization
//! * [`geodabs_distance`] — DTW / discrete Fréchet / BTM baselines
//! * [`geodabs_index`] — inverted indexes and retrieval evaluation
//! * [`geodabs_cluster`] — sharded distributed index simulation
//! * [`geodabs_gen`] — synthetic dataset and workload generation

pub use geodabs;
pub use geodabs_cluster;
pub use geodabs_distance;
pub use geodabs_gen;
pub use geodabs_geo;
pub use geodabs_index;
pub use geodabs_roadnet;
pub use geodabs_roaring;
pub use geodabs_traj;
